// ImplicitLayout + stackless escape-index traversal: preorder/escape
// invariants, pointer-free arena sizing, envelope round-trip, corruption
// detection, FetchSession streaming classification, walker equivalence with
// the skip-pointer baseline, and the engine's counted (never silent)
// degradation when the arena fails verification.
#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "data/noaa_synth.hpp"
#include "data/synthetic.hpp"
#include "engine/batch_engine.hpp"
#include "fault/fault.hpp"
#include "fault/sites.hpp"
#include "knn/brute_force.hpp"
#include "knn/implicit_stackless.hpp"
#include "knn/stackless_baselines.hpp"
#include "layout/fetch.hpp"
#include "layout/implicit.hpp"
#include "obs/registry.hpp"
#include "shard/sharded_engine.hpp"
#include "sstree/builders.hpp"
#include "test_util.hpp"

namespace psb {
namespace {

using layout::ImplicitLayout;

PointSet noaa_points(std::size_t stations = 80, std::size_t readings = 30) {
  data::NoaaSpec spec;
  spec.stations = stations;
  spec.readings_per_station = readings;
  spec.seed = 1973;
  return data::make_noaa_like(spec);
}

std::uint64_t counter_value(const obs::Registry::Snapshot& snap, const std::string& name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return v;
  }
  return 0;
}

TEST(ImplicitLayout, PreorderAndEscapeInvariants) {
  const PointSet points = noaa_points();
  const sstree::SSTree tree = sstree::build_hilbert(points, 16).tree;
  const ImplicitLayout lay(tree);
  lay.validate();

  ASSERT_EQ(lay.num_nodes(), tree.num_nodes());
  EXPECT_EQ(lay.node_at(0), tree.root());
  for (std::uint32_t slot = 0; slot < lay.num_nodes(); ++slot) {
    const sstree::Node& n = tree.node(lay.node_at(slot));
    EXPECT_EQ(lay.slot_of(n.id), slot);
    if (!n.is_leaf()) {
      // Descent is index arithmetic: the first child always sits at slot+1.
      ASSERT_LT(slot + 1, lay.num_nodes());
      EXPECT_EQ(lay.node_at(slot + 1), n.children.front()) << "slot " << slot;
    }
    // The rope always advances (or terminates) — a stackless walk is total.
    const std::uint32_t esc = lay.escape(slot);
    EXPECT_TRUE(esc == ImplicitLayout::kInvalidSlot || esc > slot) << "slot " << slot;
  }
  EXPECT_EQ(lay.escape(0), ImplicitLayout::kInvalidSlot);  // root's subtree is everything
}

TEST(ImplicitLayout, PointerFreeRecordsAreSmaller) {
  const PointSet points = noaa_points();
  const sstree::SSTree tree = sstree::build_hilbert(points, 16).tree;
  const ImplicitLayout lay(tree);

  for (std::uint32_t slot = 0; slot < lay.num_nodes(); ++slot) {
    const sstree::Node& n = tree.node(lay.node_at(slot));
    EXPECT_LT(ImplicitLayout::node_byte_size(tree, n), tree.node_byte_size(n))
        << "slot " << slot;
  }
  const ImplicitLayout::Stats s = lay.stats();
  EXPECT_EQ(s.nodes, tree.num_nodes());
  EXPECT_LT(s.arena_bytes, s.pointer_arena_bytes);
  EXPECT_EQ(s.arena_bytes, lay.arena_bytes());
}

TEST(ImplicitLayout, EnvelopeRoundTrip) {
  const PointSet points = noaa_points(40, 20);
  const sstree::SSTree tree = sstree::build_hilbert(points, 8).tree;
  const ImplicitLayout lay(tree);

  const std::string image = lay.serialize();
  const ImplicitLayout reloaded = ImplicitLayout::parse(tree, image, "round-trip");
  EXPECT_TRUE(reloaded.verify());
  reloaded.validate();
  ASSERT_EQ(reloaded.num_nodes(), lay.num_nodes());
  for (std::uint32_t slot = 0; slot < lay.num_nodes(); ++slot) {
    EXPECT_EQ(reloaded.node_at(slot), lay.node_at(slot));
    EXPECT_EQ(reloaded.escape(slot), lay.escape(slot));
    EXPECT_EQ(reloaded.span(slot).offset, lay.span(slot).offset);
    EXPECT_EQ(reloaded.span(slot).bytes, lay.span(slot).bytes);
  }
  EXPECT_EQ(reloaded.arena_bytes(), lay.arena_bytes());

  const std::string path = testing::TempDir() + "/implicit_layout_rt.psbl";
  lay.save(path);
  const ImplicitLayout from_disk = ImplicitLayout::load(tree, path);
  EXPECT_TRUE(from_disk.verify());
  EXPECT_EQ(from_disk.arena_bytes(), lay.arena_bytes());
  std::remove(path.c_str());
}

TEST(ImplicitLayout, CorruptedImageIsRejectedTyped) {
  const PointSet points = noaa_points(40, 20);
  const sstree::SSTree tree = sstree::build_hilbert(points, 8).tree;
  const std::string image = ImplicitLayout(tree).serialize();

  // Every corrupted byte position must surface as CorruptIndex — envelope
  // CRC for payload bytes, field checks for anything that slips through.
  for (std::size_t pos = 0; pos < image.size(); pos += 7) {
    std::string bad = image;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x20);
    EXPECT_THROW(ImplicitLayout::parse(tree, bad, "corrupt"), CorruptIndex)
        << "byte " << pos;
  }
  EXPECT_THROW(ImplicitLayout::parse(tree, image.substr(0, image.size() / 2), "trunc"),
               CorruptIndex);
}

TEST(ImplicitLayout, EscapeBitflipAlwaysCaughtByVerify) {
  const PointSet points = noaa_points(40, 20);
  const sstree::SSTree tree = sstree::build_hilbert(points, 8).tree;
  for (std::uint64_t payload = 1; payload <= 64; ++payload) {
    ImplicitLayout lay(tree);
    ASSERT_TRUE(lay.verify());
    lay.corrupt(fault::mix(payload));
    EXPECT_FALSE(lay.verify()) << "payload " << payload;
  }
}

TEST(ImplicitLayout, PreorderSweepStreamsCoalesced) {
  const PointSet points = noaa_points();
  const sstree::SSTree tree = sstree::build_hilbert(points, 16).tree;
  const ImplicitLayout lay(tree);
  layout::FetchSession session(lay);
  session.begin_query();

  // The preorder placement *is* the traversal order: a full walk touches the
  // arena address-sequentially, so after the first (necessarily scattered)
  // fetch every charged fetch continues the stream — never kRandom.
  for (std::uint32_t slot = 0; slot < lay.num_nodes(); ++slot) {
    const layout::FetchCharge c = session.classify(slot);
    if (slot == 0 || c.bytes == 0) continue;
    EXPECT_EQ(static_cast<int>(c.pattern), static_cast<int>(simt::Access::kCoalesced))
        << "slot " << slot;
  }
  EXPECT_EQ(session.segments_fetched(), lay.num_segments());

  // Re-walking with the window warm is pure on-chip traffic.
  session.begin_query();
  for (std::uint32_t slot = 0; slot < lay.num_nodes(); ++slot) {
    EXPECT_EQ(session.classify(slot).bytes, 0u) << "slot " << slot;
  }
}

TEST(ImplicitStackless, BitIdenticalToSkipPointerWalk) {
  const PointSet points = noaa_points();
  const sstree::SSTree tree = sstree::build_hilbert(points, 16).tree;
  const ImplicitLayout lay(tree);
  const PointSet queries = data::sample_queries(points, 16, 0.5, 7);

  knn::GpuKnnOptions opts;
  opts.k = 8;
  const knn::BatchResult want = knn::skip_pointer_batch(tree, queries, opts);

  knn::GpuKnnOptions iopts = opts;
  iopts.implicit = &lay;
  const knn::BatchResult got = knn::implicit_stackless_batch(tree, queries, iopts);

  // The escape table is the preorder image of the skip chain, so the walks
  // are the same walk: identical neighbors *and* identical traversal stats.
  ASSERT_EQ(got.queries.size(), want.queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto& g = got.queries[q];
    const auto& w = want.queries[q];
    ASSERT_EQ(g.neighbors.size(), w.neighbors.size()) << "query " << q;
    for (std::size_t i = 0; i < g.neighbors.size(); ++i) {
      EXPECT_EQ(g.neighbors[i].id, w.neighbors[i].id) << "query " << q << " rank " << i;
      EXPECT_EQ(g.neighbors[i].dist, w.neighbors[i].dist) << "query " << q << " rank " << i;
    }
    EXPECT_EQ(g.stats.nodes_visited, w.stats.nodes_visited) << "query " << q;
    EXPECT_EQ(g.stats.leaf_scans, w.stats.leaf_scans) << "query " << q;
    EXPECT_EQ(g.stats.backtracks, w.stats.backtracks) << "query " << q;
    EXPECT_EQ(g.stats.points_examined, w.stats.points_examined) << "query " << q;
    EXPECT_EQ(g.stats.heap_inserts, w.stats.heap_inserts) << "query " << q;
  }
}

TEST(ImplicitStackless, RequiresTheLayout) {
  const PointSet points = noaa_points(20, 10);
  const sstree::SSTree tree = sstree::build_hilbert(points, 8).tree;
  const PointSet queries = data::sample_queries(points, 1, 0.0, 7);
  knn::GpuKnnOptions opts;
  opts.k = 4;
  EXPECT_THROW(knn::implicit_stackless_batch(tree, queries, opts), InvalidArgument);
}

TEST(ImplicitStackless, ReorderInvariant) {
  const PointSet points = noaa_points();
  const sstree::SSTree tree = sstree::build_hilbert(points, 16).tree;
  const PointSet queries = data::sample_queries(points, 24, 0.5, 11);

  engine::BatchEngineOptions base;
  base.algorithm = engine::Algorithm::kImplicitStackless;
  base.layout = engine::NodeLayout::kImplicit;
  base.gpu.k = 8;
  base.warp_queries = 1;
  const knn::BatchResult plain = engine::BatchEngine(tree, base).run(queries);

  engine::BatchEngineOptions reordered = base;
  reordered.reorder_queries = true;
  const knn::BatchResult sorted = engine::BatchEngine(tree, reordered).run(queries);

  ASSERT_EQ(sorted.queries.size(), plain.queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto& g = sorted.queries[q];
    const auto& w = plain.queries[q];
    ASSERT_EQ(g.neighbors.size(), w.neighbors.size()) << "query " << q;
    for (std::size_t i = 0; i < g.neighbors.size(); ++i) {
      EXPECT_EQ(g.neighbors[i].id, w.neighbors[i].id) << "query " << q << " rank " << i;
      EXPECT_EQ(g.neighbors[i].dist, w.neighbors[i].dist) << "query " << q;
    }
    EXPECT_EQ(g.stats.nodes_visited, w.stats.nodes_visited) << "query " << q;
  }
}

TEST(ImplicitStackless, EngineDegradesCountedNeverSilentOnCorruptArena) {
  const PointSet points = noaa_points();
  const sstree::SSTree tree = sstree::build_hilbert(points, 16).tree;
  const PointSet queries = data::sample_queries(points, 8, 0.5, 13);

  knn::GpuKnnOptions ref;
  ref.k = 8;
  const knn::BatchResult truth = knn::brute_force_batch(points, queries, ref);

  engine::BatchEngineOptions eo;
  eo.algorithm = engine::Algorithm::kImplicitStackless;
  eo.gpu.k = 8;
  const engine::BatchEngine eng(tree, eo);
  ASSERT_NE(eng.implicit_layout(), nullptr);

  fault::Spec spec;
  spec.site = std::string(fault::kSiteImplicitEscape);
  spec.seed = 20260809;
  const obs::Registry::Snapshot before = obs::Registry::global().snapshot();
  knn::BatchResult got;
  {
    fault::InjectionScope scope(spec);
    got = eng.run(queries);
    ASSERT_EQ(scope.fired(fault::kSiteImplicitEscape), 1u);
  }
  const obs::Registry::Snapshot after = obs::Registry::global().snapshot();

  // The corrupted escape word is caught by the per-segment CRC before any
  // query is served; the batch degrades to the exact pointer-path fallback
  // and the downgrade is counted — never a wrong answer, never silent.
  EXPECT_GE(counter_value(after, "engine.layout.fallback") -
                counter_value(before, "engine.layout.fallback"),
            1u);
  ASSERT_EQ(got.queries.size(), truth.queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto& g = got.queries[q].neighbors;
    const auto& w = truth.queries[q].neighbors;
    ASSERT_EQ(g.size(), w.size()) << "query " << q;
    for (std::size_t i = 0; i < g.size(); ++i) {
      EXPECT_EQ(g[i].id, w[i].id) << "query " << q << " rank " << i;
      EXPECT_EQ(g[i].dist, w[i].dist) << "query " << q << " rank " << i;
    }
  }
}

TEST(ImplicitStackless, ShardedServingStaysExactAcrossShardCounts) {
  const PointSet points = noaa_points(40, 25);
  const PointSet queries = data::sample_queries(points, 10, 0.5, 17);
  knn::GpuKnnOptions ref;
  ref.k = 8;
  const knn::BatchResult truth = knn::brute_force_batch(points, queries, ref);

  for (const std::size_t shards : {1u, 4u, 13u}) {
    shard::ShardedEngineOptions sopts;
    sopts.num_shards = shards;
    sopts.degree = 16;
    sopts.engine.algorithm = engine::Algorithm::kImplicitStackless;
    sopts.engine.layout = engine::NodeLayout::kImplicit;
    sopts.engine.gpu.k = 8;
    shard::ShardedEngine eng(points, sopts);
    const knn::BatchResult got = eng.run(queries);
    EXPECT_TRUE(got.all_ok());
    ASSERT_EQ(got.queries.size(), truth.queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const std::vector<Scalar> want =
          test::reference_knn_distances(points, queries[q], ref.k);
      test::expect_knn_matches(got.queries[q].neighbors, want,
                               ("S" + std::to_string(shards)).c_str());
    }
  }
}

}  // namespace
}  // namespace psb
