// Property-based correctness battery for the sharded scatter-gather engine.
//
// Each seeded trial draws a random configuration — dimensionality, k, shard
// count, dataset shape (including duplicate-heavy sets, k larger than any
// shard, and more shards than points so trailing shards are empty) — and
// asserts the sharded merge is *bit-identical* to the exhaustive (dist, id)
// oracle: same ids, same float distances, same order. Every kernel computes
// point distances with the same double-accumulate arithmetic as
// psb::distance, so exact equality is the contract, not an approximation.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/geometry.hpp"
#include "common/points.hpp"
#include "common/rng.hpp"
#include "engine/batch_engine.hpp"
#include "shard/partition.hpp"
#include "shard/sharded_engine.hpp"
#include "test_util.hpp"

namespace psb {
namespace {

/// Exhaustive ground truth under the repository's (dist, id) tie order.
std::vector<KnnHeap::Entry> oracle_knn(const PointSet& data, std::span<const Scalar> q,
                                       std::size_t k) {
  KnnHeap heap(std::min(k, data.size()));
  for (std::size_t i = 0; i < data.size(); ++i) {
    heap.offer(distance(q, data[i]), static_cast<PointId>(i));
  }
  return heap.sorted();
}

void expect_bit_identical(const std::vector<KnnHeap::Entry>& got,
                          const std::vector<KnnHeap::Entry>& want, std::uint64_t trial,
                          std::size_t query) {
  ASSERT_EQ(got.size(), want.size()) << "trial " << trial << " query " << query;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id)
        << "trial " << trial << " query " << query << " rank " << i;
    EXPECT_EQ(got[i].dist, want[i].dist)  // exact float equality, not NEAR
        << "trial " << trial << " query " << query << " rank " << i;
  }
}

/// Random dataset mixing three shapes: clustered, uniform, and duplicate-heavy
/// (every point drawn from a tiny palette, so distance ties are everywhere).
PointSet random_dataset(Rng& rng, std::size_t dims, std::size_t n) {
  const std::uint64_t shape = rng.next_below(3);
  PointSet out(dims);
  out.reserve(n);
  std::vector<Scalar> p(dims);
  if (shape == 2) {
    // Duplicate-heavy: a palette of at most 5 distinct points.
    const std::size_t palette_size = 1 + rng.next_below(5);
    std::vector<std::vector<Scalar>> palette(palette_size, std::vector<Scalar>(dims));
    for (auto& pal : palette) {
      for (auto& v : pal) v = static_cast<Scalar>(rng.uniform(0.0, 100.0));
    }
    for (std::size_t i = 0; i < n; ++i) out.append(palette[rng.next_below(palette_size)]);
    return out;
  }
  const double extent = shape == 0 ? 1000.0 : 50.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& v : p) v = static_cast<Scalar>(rng.uniform(0.0, extent));
    out.append(p);
  }
  return out;
}

constexpr engine::Algorithm kAlgorithms[] = {
    engine::Algorithm::kPsb,           engine::Algorithm::kBestFirst,
    engine::Algorithm::kBranchAndBound, engine::Algorithm::kStacklessRestart,
    engine::Algorithm::kStacklessSkip,  engine::Algorithm::kBruteForce,
    engine::Algorithm::kTaskParallel,
};

void run_trial(std::uint64_t trial, bool with_bound_sharing) {
  Rng rng(0x5AD5u * 1000003u + trial);
  const std::size_t dims = 1 + rng.next_below(8);          // 1..8
  const std::size_t n = 1 + rng.next_below(240);           // 1..240
  const PointSet data = random_dataset(rng, dims, n);

  shard::ShardedEngineOptions opts;
  // Shard counts past n leave trailing shards empty; small shards with large
  // k exercise k > points-per-shard merges.
  opts.num_shards = 1 + rng.next_below(n + 2);
  opts.degree = 4 + rng.next_below(29);                    // 4..32
  opts.engine.algorithm = kAlgorithms[trial % std::size(kAlgorithms)];
  opts.engine.gpu.k = 1 + rng.next_below(n + 4);           // may exceed n
  opts.engine.use_snapshot = rng.next_below(2) == 1;
  opts.share_bounds = with_bound_sharing;
  shard::ShardedEngine eng(data, opts);

  PointSet queries(dims);
  std::vector<Scalar> p(dims);
  const std::size_t nq = 1 + rng.next_below(4);
  for (std::size_t i = 0; i < nq; ++i) {
    if (rng.next_below(3) == 0 && !data.empty()) {
      // On-point queries maximize exact distance ties.
      const std::span<const Scalar> src = data[rng.next_below(n)];
      queries.append(src);
    } else {
      for (auto& v : p) v = static_cast<Scalar>(rng.uniform(-50.0, 1050.0));
      queries.append(p);
    }
  }

  const knn::BatchResult res = eng.run(queries);
  ASSERT_EQ(res.queries.size(), queries.size());
  EXPECT_TRUE(res.all_ok()) << "trial " << trial;
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    expect_bit_identical(res.queries[qi].neighbors,
                         oracle_knn(data, queries[qi], opts.engine.gpu.k), trial, qi);
  }
}

TEST(ShardPropertyTest, TwoHundredSeededTrialsWithBoundSharing) {
  for (std::uint64_t trial = 0; trial < 140; ++trial) run_trial(trial, true);
}

TEST(ShardPropertyTest, SeededTrialsWithoutBoundSharing) {
  // The nobound configuration must be just as exact — it only reads more.
  for (std::uint64_t trial = 140; trial < 210; ++trial) run_trial(trial, false);
}

TEST(ShardPropertyTest, PartitionIsBalancedAndOrderPreserving) {
  Rng rng(77);
  for (std::uint64_t trial = 0; trial < 32; ++trial) {
    const std::size_t dims = 1 + rng.next_below(10);
    const std::size_t n = rng.next_below(300);
    PointSet data(dims);
    std::vector<Scalar> p(dims);
    for (std::size_t i = 0; i < n; ++i) {
      for (auto& v : p) v = static_cast<Scalar>(rng.uniform(0.0, 512.0));
      data.append(p);
    }
    const std::size_t shards = 1 + rng.next_below(17);
    const shard::Partition part = shard::hilbert_partition(data, shards);
    ASSERT_EQ(part.shards.size(), shards);
    std::vector<std::uint8_t> seen(n, 0);
    const std::size_t base = n / shards;
    for (const auto& ids : part.shards) {
      EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
      EXPECT_GE(ids.size(), base);      // balanced to within one point
      EXPECT_LE(ids.size(), base + 1);
      for (const PointId id : ids) {
        ASSERT_LT(id, n);
        EXPECT_EQ(seen[id], 0) << "id assigned twice";
        seen[id] = 1;
      }
    }
    EXPECT_EQ(std::count(seen.begin(), seen.end(), 0), 0) << "unassigned id";
  }
}

TEST(ShardPropertyTest, SingleShardIsIdentityPartition) {
  const PointSet data = test::small_clustered(4, 64, 9);
  const shard::Partition part = shard::hilbert_partition(data, 1);
  ASSERT_EQ(part.shards.size(), 1u);
  ASSERT_EQ(part.shards[0].size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) EXPECT_EQ(part.shards[0][i], i);
}

TEST(ShardPropertyTest, EmptyShardsAreServedExactly) {
  // 3 points across 13 shards: 10 shards empty, every k answered exactly.
  PointSet data(2);
  for (Scalar v : {1.0F, 2.0F, 3.0F}) {
    const std::vector<Scalar> p = {v, v};
    data.append(p);
  }
  for (std::size_t k : {1u, 2u, 3u, 8u}) {
    shard::ShardedEngineOptions opts;
    opts.num_shards = 13;
    opts.engine.gpu.k = k;
    shard::ShardedEngine eng(data, opts);
    const PointSet queries = test::random_queries(2, 5, 123, 4.0);
    const knn::BatchResult res = eng.run(queries);
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      expect_bit_identical(res.queries[qi].neighbors, oracle_knn(data, queries[qi], k), k, qi);
    }
  }
}

}  // namespace
}  // namespace psb
