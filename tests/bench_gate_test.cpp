// Unit tests for the perf-regression gate: direction inference, threshold
// resolution, and the pass/fail semantics bench_gate's exit code reflects.
#include <gtest/gtest.h>

#include "bench_util/gate.hpp"

namespace psb::bench_util {
namespace {

obs::FlatJson flat(std::initializer_list<std::pair<const char*, double>> values) {
  obs::FlatJson out;
  for (const auto& [k, v] : values) out.numbers[k] = v;
  return out;
}

TEST(GateDirection, ThroughputVocabularyIsHigherBetter) {
  EXPECT_EQ(infer_direction("psb.qps"), Direction::kHigherIsBetter);
  EXPECT_EQ(infer_direction("batch.throughput"), Direction::kHigherIsBetter);
  EXPECT_EQ(infer_direction("psb.speedup"), Direction::kHigherIsBetter);
  EXPECT_EQ(infer_direction("psb.warp_efficiency"), Direction::kHigherIsBetter);
  EXPECT_EQ(infer_direction("cache.hit_rate"), Direction::kHigherIsBetter);
}

TEST(GateDirection, CostVocabularyIsLowerBetter) {
  EXPECT_EQ(infer_direction("psb.avg_query_ms"), Direction::kLowerIsBetter);
  EXPECT_EQ(infer_direction("psb.accessed_bytes"), Direction::kLowerIsBetter);
  EXPECT_EQ(infer_direction("psb.nodes_visited"), Direction::kLowerIsBetter);
  EXPECT_EQ(infer_direction("unknown.metric"), Direction::kLowerIsBetter);
  // Word matching, not substring: "ships" must not match "hits"/"hit".
  EXPECT_EQ(infer_direction("x.ships"), Direction::kLowerIsBetter);
}

TEST(GateThresholdsTest, PerMetricOverridesDefault) {
  GateThresholds t;
  t.default_rel_tolerance = 0.05;
  t.per_metric["psb.avg_query_ms"] = 0.2;
  EXPECT_DOUBLE_EQ(t.tolerance_for("psb.avg_query_ms"), 0.2);
  EXPECT_DOUBLE_EQ(t.tolerance_for("psb.accessed_bytes"), 0.05);
}

TEST(GateRun, TenPercentRegressionFailsAtDefaultTolerance) {
  const auto baseline = flat({{"psb.accessed_bytes", 1000.0}});
  const auto regressed = flat({{"psb.accessed_bytes", 1100.0}});
  const GateResult r = run_gate(baseline, regressed, GateThresholds{});
  EXPECT_FALSE(r.passed);
  ASSERT_EQ(r.checks.size(), 1U);
  EXPECT_FALSE(r.checks[0].passed);
  EXPECT_NEAR(r.checks[0].rel_worsening, 0.10, 1e-12);
  EXPECT_EQ(r.num_failed(), 1U);
}

TEST(GateRun, IdenticalCandidatePassesAtZeroTolerance) {
  const auto baseline = flat({{"psb.accessed_bytes", 1000.0}, {"psb.qps", 50.0}});
  GateThresholds t;
  t.default_rel_tolerance = 0.0;
  const GateResult r = run_gate(baseline, baseline, t);
  EXPECT_TRUE(r.passed);
  EXPECT_EQ(r.num_failed(), 0U);
}

TEST(GateRun, ImprovementAlwaysPasses) {
  const auto baseline = flat({{"psb.accessed_bytes", 1000.0}, {"psb.qps", 50.0}});
  const auto improved = flat({{"psb.accessed_bytes", 10.0}, {"psb.qps", 500.0}});
  GateThresholds t;
  t.default_rel_tolerance = 0.0;
  EXPECT_TRUE(run_gate(baseline, improved, t).passed);
}

TEST(GateRun, HigherIsBetterMetricFailsOnDrop) {
  const auto baseline = flat({{"psb.qps", 100.0}});
  const auto dropped = flat({{"psb.qps", 90.0}});
  const GateResult r = run_gate(baseline, dropped, GateThresholds{});
  EXPECT_FALSE(r.passed);
  EXPECT_NEAR(r.checks[0].rel_worsening, 0.10, 1e-12);
}

TEST(GateRun, WithinToleranceDriftPasses) {
  const auto baseline = flat({{"psb.avg_query_ms", 100.0}});
  const auto drifted = flat({{"psb.avg_query_ms", 104.0}});
  const GateResult r = run_gate(baseline, drifted, GateThresholds{});  // 5% default
  EXPECT_TRUE(r.passed);
}

TEST(GateRun, MissingBaselineMetricFails) {
  const auto baseline = flat({{"psb.accessed_bytes", 1000.0}, {"psb.qps", 50.0}});
  const auto candidate = flat({{"psb.accessed_bytes", 1000.0}});
  const GateResult r = run_gate(baseline, candidate, GateThresholds{});
  EXPECT_FALSE(r.passed);
  ASSERT_EQ(r.missing.size(), 1U);
  EXPECT_EQ(r.missing[0], "psb.qps");
  EXPECT_EQ(r.num_failed(), 1U);
}

TEST(GateRun, ExtraCandidateMetricIsInformationalOnly) {
  const auto baseline = flat({{"psb.accessed_bytes", 1000.0}});
  const auto candidate = flat({{"psb.accessed_bytes", 1000.0}, {"psb.new_metric", 7.0}});
  const GateResult r = run_gate(baseline, candidate, GateThresholds{});
  EXPECT_TRUE(r.passed);
  ASSERT_EQ(r.extra.size(), 1U);
  EXPECT_EQ(r.extra[0], "psb.new_metric");
}

TEST(GateRun, ZeroBaselinePassesOnlyWhenUnmoved) {
  const auto baseline = flat({{"psb.backtracks", 0.0}});
  EXPECT_TRUE(run_gate(baseline, flat({{"psb.backtracks", 0.0}}), GateThresholds{}).passed);
  const GateResult r = run_gate(baseline, flat({{"psb.backtracks", 3.0}}), GateThresholds{});
  EXPECT_FALSE(r.passed);
}

TEST(GateReport, MentionsWorstMetricAndVerdict) {
  const auto baseline = flat({{"psb.accessed_bytes", 1000.0}, {"psb.qps", 100.0}});
  const auto candidate = flat({{"psb.accessed_bytes", 1500.0}, {"psb.qps", 100.0}});
  const GateResult r = run_gate(baseline, candidate, GateThresholds{});
  const std::string report = format_gate_report(r);
  EXPECT_NE(report.find("FAIL psb.accessed_bytes"), std::string::npos);
  EXPECT_NE(report.find("GATE FAIL"), std::string::npos);
  // The failing metric sorts first (worst first).
  EXPECT_LT(report.find("psb.accessed_bytes"), report.find("psb.qps"));
}

}  // namespace
}  // namespace psb::bench_util
