// Property battery for the streaming serving front-end.
//
// Each seeded trial draws a random serving configuration — arrival profile
// (rate, diurnal modulation, bursts), buffer capacity, deadline/horizon,
// admission bound, backend algorithm and thread count — replays the stream on
// the virtual clock, and asserts the no-silent-loss contract:
//   * every arrival is accounted for: answered exactly once or shed, flagged;
//   * every answered query's neighbor list is bit-identical to the same
//     query run offline through BatchEngine (buffering, cohort formation and
//     flush scheduling change accounting, never answers);
//   * every deadline miss and shed is flagged on the query AND counted in
//     the report — the counters cross-foot with the per-query flags.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/geometry.hpp"
#include "common/points.hpp"
#include "common/rng.hpp"
#include "engine/batch_engine.hpp"
#include "serve/arrivals.hpp"
#include "serve/streaming_engine.hpp"
#include "shard/sharded_engine.hpp"
#include "sstree/builders.hpp"
#include "test_util.hpp"

namespace psb {
namespace {

/// Exhaustive ground truth under the repository's (dist, id) tie order.
std::vector<KnnHeap::Entry> oracle_knn(const PointSet& data, std::span<const Scalar> q,
                                       std::size_t k) {
  KnnHeap heap(std::min(k, data.size()));
  for (std::size_t i = 0; i < data.size(); ++i) {
    heap.offer(distance(q, data[i]), static_cast<PointId>(i));
  }
  return heap.sorted();
}

void expect_bit_identical(const std::vector<KnnHeap::Entry>& got,
                          const std::vector<KnnHeap::Entry>& want, std::uint64_t trial,
                          std::size_t arrival) {
  ASSERT_EQ(got.size(), want.size()) << "trial " << trial << " arrival " << arrival;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << "trial " << trial << " arrival " << arrival
                                     << " rank " << i;
    EXPECT_EQ(got[i].dist, want[i].dist)  // exact float equality, not NEAR
        << "trial " << trial << " arrival " << arrival << " rank " << i;
  }
}

constexpr engine::Algorithm kAlgorithms[] = {
    engine::Algorithm::kPsb,
    engine::Algorithm::kBestFirst,
    engine::Algorithm::kBranchAndBound,
    engine::Algorithm::kStacklessRestart,
    engine::Algorithm::kStacklessSkip,
    engine::Algorithm::kImplicitStackless,
};

serve::ArrivalSpec random_arrival_spec(Rng& rng, std::uint64_t trial) {
  serve::ArrivalSpec spec;
  spec.rate_qps = 400.0 + static_cast<double>(rng.next_below(3200));
  spec.duration_s = 0.02 + 0.01 * static_cast<double>(rng.next_below(5));
  spec.diurnal_amplitude = 0.25 * static_cast<double>(rng.next_below(4));
  spec.diurnal_period_s = 0.01 + 0.02 * rng.next_double();
  if (rng.next_below(2) == 1) {
    spec.burst_rate_per_s = 20.0 + static_cast<double>(rng.next_below(80));
    spec.burst_size = 4 + rng.next_below(24);
    spec.burst_width_s = 0.001 + 0.003 * rng.next_double();
    spec.burst_spread = 5.0;
  }
  if (rng.next_below(2) == 1) spec.query_jitter = 4.0;
  spec.seed = 0xA11CE5ULL * 1000003ULL + trial;
  return spec;
}

serve::StreamingOptions random_streaming_options(Rng& rng, std::uint64_t trial,
                                                 serve::DispatchMode mode) {
  serve::StreamingOptions so;
  so.engine.algorithm = kAlgorithms[trial % std::size(kAlgorithms)];
  so.engine.gpu.k = 1 + rng.next_below(16);
  so.engine.use_snapshot = rng.next_below(2) == 1;
  so.engine.num_threads = 1 + rng.next_below(4);
  so.engine.reorder_queries = rng.next_below(2) == 1;
  so.engine.warp_queries = 1 + rng.next_below(32);
  so.mode = mode;
  so.buffer_capacity = 1 + rng.next_below(32);
  so.deadline_us = 500 + rng.next_below(20000);
  so.flush_horizon_us = rng.next_below(so.deadline_us);
  // Bound 0 = unbounded; a tight bound forces the shed path to actually run.
  const std::uint64_t bound_kind = rng.next_below(3);
  so.admission_queue_bound = bound_kind == 0 ? 0 : (bound_kind == 1 ? 8 + rng.next_below(64) : 1);
  so.cell_bits = 1 + static_cast<int>(rng.next_below(4));
  so.dispatch_overhead_us = 20 + rng.next_below(300);
  return so;
}

/// The shared no-silent-loss postcondition: counters cross-foot with the
/// per-arrival flags, and every answered neighbor list matches `offline`.
void check_report(const serve::StreamingReport& rep, const serve::ArrivalStream& stream,
                  const knn::BatchResult& offline, const serve::StreamingOptions& so,
                  std::uint64_t trial) {
  ASSERT_EQ(rep.queries.size(), stream.size()) << "trial " << trial;
  ASSERT_EQ(rep.arrivals, stream.size()) << "trial " << trial;
  EXPECT_EQ(rep.admitted + rep.shed, rep.arrivals) << "trial " << trial;
  EXPECT_EQ(rep.answered, rep.admitted) << "trial " << trial;
  EXPECT_EQ(rep.latency_us.count(), rep.answered) << "trial " << trial;
  EXPECT_EQ(rep.flush_full + rep.flush_deadline + rep.flush_drain, rep.flushes)
      << "trial " << trial;

  std::uint64_t shed_flags = 0;
  std::uint64_t miss_flags = 0;
  std::uint64_t degraded_flags = 0;
  for (std::size_t i = 0; i < rep.queries.size(); ++i) {
    const serve::StreamedQuery& q = rep.queries[i];
    if (q.shed) {
      ++shed_flags;
      // A shed arrival was never dispatched: no answer, and never an
      // unflagged one — the empty list must not read as exact.
      EXPECT_TRUE(q.neighbors.empty()) << "trial " << trial << " arrival " << i;
      EXPECT_NE(q.status, knn::QueryStatus::kOk) << "trial " << trial << " arrival " << i;
      continue;
    }
    // Answered exactly once, bit-identical to the offline batch answer.
    expect_bit_identical(q.neighbors, offline.queries[i].neighbors, trial, i);
    EXPECT_LE(q.latency_us, rep.span_us) << "trial " << trial << " arrival " << i;
    if (q.deadline_missed) {
      ++miss_flags;
      EXPECT_GT(q.latency_us, so.deadline_us) << "trial " << trial << " arrival " << i;
      EXPECT_NE(q.status, knn::QueryStatus::kOk) << "trial " << trial << " arrival " << i;
    } else {
      EXPECT_LE(q.latency_us, so.deadline_us) << "trial " << trial << " arrival " << i;
    }
    if (q.status != knn::QueryStatus::kOk) ++degraded_flags;
  }
  EXPECT_EQ(shed_flags, rep.shed) << "trial " << trial;
  EXPECT_EQ(miss_flags, rep.deadline_misses) << "trial " << trial;
  EXPECT_EQ(degraded_flags, rep.degraded) << "trial " << trial;
  if (so.admission_queue_bound > 0) {
    EXPECT_LE(rep.max_queue_depth, so.admission_queue_bound) << "trial " << trial;
  }
}

void run_trial(std::uint64_t trial, serve::DispatchMode mode) {
  Rng rng(0x57E4Au * 1000003u + trial);
  const std::size_t dims = 2 + rng.next_below(5);  // 2..6
  const std::size_t n = 40 + rng.next_below(200);  // 40..239
  const PointSet data = test::small_clustered(dims, n, trial + 11);
  const std::size_t degree = 8 + rng.next_below(25);  // 8..32
  const sstree::BuildOutput built = sstree::build_kmeans(data, degree, {});

  const serve::ArrivalSpec aspec = random_arrival_spec(rng, trial);
  const serve::ArrivalStream stream = serve::generate_arrivals(data, aspec);
  if (stream.size() == 0) return;  // degenerate draw; nothing to assert

  const serve::StreamingOptions so = random_streaming_options(rng, trial, mode);
  serve::StreamingEngine seng(built.tree, so);
  const serve::StreamingReport rep = seng.run(stream);

  // The offline oracle: the identical query set through the identical
  // BatchEngine configuration, as one batch.
  const knn::BatchResult offline = engine::BatchEngine(built.tree, so.engine).run(stream.queries);
  check_report(rep, stream, offline, so, trial);
}

TEST(StreamPropertyTest, BufferedSeededTrials) {
  for (std::uint64_t trial = 0; trial < 120; ++trial) {
    run_trial(trial, serve::DispatchMode::kBuffered);
  }
}

TEST(StreamPropertyTest, NaiveSeededTrials) {
  for (std::uint64_t trial = 120; trial < 180; ++trial) {
    run_trial(trial, serve::DispatchMode::kNaive);
  }
}

TEST(StreamPropertyTest, ShardedBackendSeededTrials) {
  // The front-end over the scatter-gather backend: answers must match the
  // exhaustive oracle (the sharded merge is exact), with the same
  // no-silent-loss accounting.
  for (std::uint64_t trial = 180; trial < 210; ++trial) {
    Rng rng(0x5A4DEu * 1000003u + trial);
    const std::size_t dims = 2 + rng.next_below(4);
    const std::size_t n = 60 + rng.next_below(120);
    const PointSet data = test::small_clustered(dims, n, trial + 3);

    shard::ShardedEngineOptions sopts;
    sopts.num_shards = 1 + rng.next_below(5);
    sopts.degree = 8 + rng.next_below(17);
    sopts.engine.algorithm = kAlgorithms[trial % std::size(kAlgorithms)];
    sopts.engine.gpu.k = 1 + rng.next_below(12);
    shard::ShardedEngine sharded(data, sopts);

    serve::ArrivalSpec aspec = random_arrival_spec(rng, trial);
    aspec.rate_qps = 400.0 + static_cast<double>(rng.next_below(800));
    const serve::ArrivalStream stream = serve::generate_arrivals(data, aspec);
    if (stream.size() == 0) continue;

    serve::StreamingOptions so = random_streaming_options(rng, trial,
                                                          serve::DispatchMode::kBuffered);
    so.engine = sopts.engine;
    serve::StreamingEngine seng(sharded, data, so);
    const serve::StreamingReport rep = seng.run(stream);

    ASSERT_EQ(rep.queries.size(), stream.size()) << "trial " << trial;
    EXPECT_EQ(rep.admitted + rep.shed, rep.arrivals) << "trial " << trial;
    EXPECT_EQ(rep.answered, rep.admitted) << "trial " << trial;
    for (std::size_t i = 0; i < rep.queries.size(); ++i) {
      if (rep.queries[i].shed) continue;
      expect_bit_identical(rep.queries[i].neighbors,
                           oracle_knn(data, stream.queries[i], sopts.engine.gpu.k), trial, i);
    }
  }
}

TEST(StreamPropertyTest, ArrivalStreamsAreSortedAndDeterministic) {
  const PointSet data = test::small_clustered(3, 100, 5);
  for (std::uint64_t trial = 0; trial < 24; ++trial) {
    Rng rng(trial);
    const serve::ArrivalSpec spec = random_arrival_spec(rng, trial);
    const serve::ArrivalStream a = serve::generate_arrivals(data, spec);
    const serve::ArrivalStream b = serve::generate_arrivals(data, spec);
    ASSERT_EQ(a.size(), b.size()) << "trial " << trial;
    EXPECT_TRUE(std::is_sorted(a.time_us.begin(), a.time_us.end())) << "trial " << trial;
    EXPECT_EQ(a.time_us, b.time_us) << "trial " << trial;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const std::span<const Scalar> pa = a.queries[i];
      const std::span<const Scalar> pb = b.queries[i];
      for (std::size_t d = 0; d < pa.size(); ++d) {
        ASSERT_EQ(pa[d], pb[d]) << "trial " << trial << " arrival " << i;
      }
    }
  }
}

}  // namespace
}  // namespace psb
