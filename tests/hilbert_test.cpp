// Property tests for the d-dimensional Hilbert curve encoder.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "hilbert/hilbert.hpp"
#include "simt/sort.hpp"
#include "test_util.hpp"

namespace psb::hilbert {
namespace {

/// Enumerate every cell of a small grid and return cells ordered by their
/// Hilbert key.
std::vector<std::vector<std::uint32_t>> cells_in_hilbert_order(std::size_t dims, int bits) {
  const Encoder enc(dims, bits);
  const std::uint32_t side = 1u << bits;
  std::size_t total = 1;
  for (std::size_t i = 0; i < dims; ++i) total *= side;

  std::vector<std::uint64_t> keys(total * enc.words_per_key());
  std::vector<std::vector<std::uint32_t>> cells(total);
  for (std::size_t idx = 0; idx < total; ++idx) {
    std::vector<std::uint32_t> axes(dims);
    std::size_t rem = idx;
    for (std::size_t t = 0; t < dims; ++t) {
      axes[t] = static_cast<std::uint32_t>(rem % side);
      rem /= side;
    }
    enc.encode_axes(axes, {keys.data() + idx * enc.words_per_key(), enc.words_per_key()});
    cells[idx] = std::move(axes);
  }
  const auto order = simt::radix_sort_order(keys, enc.words_per_key(), nullptr);
  std::vector<std::vector<std::uint32_t>> out(total);
  for (std::size_t i = 0; i < total; ++i) out[i] = cells[order[i]];
  return out;
}

struct GridCase {
  std::size_t dims;
  int bits;
};

class HilbertGridTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(HilbertGridTest, CurveVisitsEveryCellOnceAndIsContinuous) {
  const auto [dims, bits] = GetParam();
  const auto path = cells_in_hilbert_order(dims, bits);

  // Bijectivity: every cell appears exactly once.
  std::map<std::vector<std::uint32_t>, int> seen;
  for (const auto& c : path) seen[c] += 1;
  std::size_t total = 1;
  for (std::size_t i = 0; i < dims; ++i) total *= (std::size_t{1} << bits);
  EXPECT_EQ(seen.size(), total);

  // Continuity: consecutive cells differ by exactly 1 in exactly one axis —
  // the defining property of a Hilbert curve.
  for (std::size_t i = 1; i < path.size(); ++i) {
    int moved_axes = 0;
    std::uint64_t step = 0;
    for (std::size_t t = 0; t < dims; ++t) {
      const auto d = static_cast<std::int64_t>(path[i][t]) - path[i - 1][t];
      if (d != 0) {
        ++moved_axes;
        step = static_cast<std::uint64_t>(d < 0 ? -d : d);
      }
    }
    ASSERT_EQ(moved_axes, 1) << "discontinuity at step " << i;
    ASSERT_EQ(step, 1u) << "jump at step " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, HilbertGridTest,
                         ::testing::Values(GridCase{2, 1}, GridCase{2, 2}, GridCase{2, 3},
                                           GridCase{2, 4}, GridCase{3, 2}, GridCase{3, 3},
                                           GridCase{4, 2}, GridCase{5, 2}),
                         [](const auto& info) {
                           return "d" + std::to_string(info.param.dims) + "b" +
                                  std::to_string(info.param.bits);
                         });

class HilbertRoundTripTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(HilbertRoundTripTest, EncodeDecodeIdentity) {
  const auto [dims, bits] = GetParam();
  const Encoder enc(dims, bits);
  Rng rng(dims * 100 + bits);
  const std::uint32_t limit = (bits == 31) ? 0x7FFFFFFFu : ((1u << bits) - 1);
  std::vector<std::uint32_t> axes(dims);
  std::vector<std::uint32_t> decoded(dims);
  std::vector<std::uint64_t> key(enc.words_per_key());
  for (int trial = 0; trial < 200; ++trial) {
    for (auto& a : axes) a = static_cast<std::uint32_t>(rng.next_below(limit + 1ull));
    enc.encode_axes(axes, key);
    enc.decode(key, decoded);
    EXPECT_EQ(axes, decoded);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, HilbertRoundTripTest,
                         ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 8, 16, 64),
                                            ::testing::Values(2, 8, 16, 31)));

TEST(Hilbert, KeyWidth) {
  EXPECT_EQ(Encoder(2, 16).words_per_key(), 1u);
  EXPECT_EQ(Encoder(4, 16).words_per_key(), 1u);
  EXPECT_EQ(Encoder(5, 16).words_per_key(), 2u);
  EXPECT_EQ(Encoder(64, 16).words_per_key(), 16u);
}

TEST(Hilbert, PointQuantizationRespectsBounds) {
  const Encoder enc(2, 8);
  Rect bounds;
  bounds.lo = {0, 0};
  bounds.hi = {100, 100};
  std::vector<std::uint64_t> key_lo(enc.words_per_key());
  std::vector<std::uint64_t> key_hi(enc.words_per_key());
  // Boundary values must not overflow the grid.
  enc.encode_point(std::vector<Scalar>{0, 0}, bounds, key_lo);
  enc.encode_point(std::vector<Scalar>{100, 100}, bounds, key_hi);
  std::vector<std::uint32_t> axes(2);
  enc.decode(key_hi, axes);
  EXPECT_EQ(axes[0], 255u);
  EXPECT_EQ(axes[1], 255u);
  // Out-of-bounds points clamp.
  enc.encode_point(std::vector<Scalar>{-50, 300}, bounds, key_lo);
  enc.decode(key_lo, axes);
  EXPECT_EQ(axes[0], 0u);
  EXPECT_EQ(axes[1], 255u);
}

TEST(Hilbert, SortedOrderPreservesLocality) {
  // Property from §IV-A: distant Hilbert indices never map to the same cell,
  // so the average hop between consecutive sorted points must be far below
  // the average pairwise distance (locality).
  const std::size_t dims = 4;
  const PointSet points = test::small_clustered(dims, 2000, 31);
  const Encoder enc(dims, 10);
  const auto keys = enc.encode_all(points);
  const auto order = simt::radix_sort_order(keys, enc.words_per_key(), nullptr);

  double hop = 0;
  for (std::size_t i = 1; i < order.size(); ++i) {
    hop += distance(points[order[i - 1]], points[order[i]]);
  }
  hop /= static_cast<double>(order.size() - 1);

  Rng rng(7);
  double random_pair = 0;
  for (int i = 0; i < 2000; ++i) {
    random_pair += distance(points[rng.next_below(points.size())],
                            points[rng.next_below(points.size())]);
  }
  random_pair /= 2000;
  EXPECT_LT(hop, random_pair / 3) << "Hilbert order lost spatial locality";
}

TEST(Hilbert, RejectsBadArguments) {
  EXPECT_THROW(Encoder(0, 8), InvalidArgument);
  EXPECT_THROW(Encoder(65, 8), InvalidArgument);
  EXPECT_THROW(Encoder(2, 0), InvalidArgument);
  EXPECT_THROW(Encoder(2, 32), InvalidArgument);
  const Encoder enc(2, 4);
  std::vector<std::uint64_t> key(enc.words_per_key());
  EXPECT_THROW(enc.encode_axes(std::vector<std::uint32_t>{1, 2, 3}, key), InvalidArgument);
  EXPECT_THROW(enc.encode_axes(std::vector<std::uint32_t>{1, 16}, key), InvalidArgument);
}

TEST(BoundingRect, CoversAllPoints) {
  const PointSet points = test::small_clustered(3, 500, 5);
  const Rect r = bounding_rect(points);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_TRUE(r.contains(points[i]));
  }
}

}  // namespace
}  // namespace psb::hilbert
