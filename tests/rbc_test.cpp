// Tests for the Random Ball Cover comparison system (§VI related work).
#include <gtest/gtest.h>

#include "rbc/rbc.hpp"
#include "test_util.hpp"

namespace psb::rbc {
namespace {

TEST(Rbc, BuildInvariants) {
  const PointSet points = test::small_clustered(8, 2000, 11);
  const RandomBallCover rbc(&points);
  rbc.validate();
  // Default representative count: ceil(sqrt(n)).
  EXPECT_EQ(rbc.num_representatives(), 45u);
  std::size_t total = 0;
  for (std::size_t r = 0; r < rbc.num_representatives(); ++r) total += rbc.list(r).size();
  EXPECT_EQ(total, points.size());
}

TEST(Rbc, ExactMatchesReference) {
  for (const std::size_t dims : {2u, 16u, 64u}) {
    const PointSet points = test::small_clustered(dims, 1500, dims * 7);
    const RandomBallCover rbc(&points);
    const PointSet queries = test::random_queries(dims, 10, dims * 9);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const auto got = rbc.query_exact(queries[q], 16);
      const auto expected = test::reference_knn_distances(points, queries[q], 16);
      test::expect_knn_matches(got.neighbors, expected, "rbc exact");
    }
  }
}

TEST(Rbc, ExactPrunesListsOnClusteredData) {
  const PointSet points = test::small_clustered(8, 4000, 13);
  const RandomBallCover rbc(&points);
  const auto r = rbc.query_exact(points[0], 8);
  // Triangle-inequality pruning must skip most lists for an on-cluster query.
  EXPECT_LT(r.stats.nodes_visited, rbc.num_representatives() / 2);
  EXPECT_LT(r.stats.points_examined, points.size());
}

TEST(Rbc, OneShotRecallIncreasesWithS) {
  const PointSet points = test::small_clustered(16, 3000, 17);
  const RandomBallCover rbc(&points);
  const PointSet queries = test::random_queries(16, 20, 19);

  auto mean_recall = [&](std::size_t s) {
    double acc = 0;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const auto got = rbc.query_one_shot(queries[q], 8, s);
      const auto expected = test::reference_knn_distances(points, queries[q], 8);
      acc += recall(got.neighbors, expected);
    }
    return acc / static_cast<double>(queries.size());
  };

  const double r1 = mean_recall(1);
  const double r5 = mean_recall(5);
  const double r_all = mean_recall(rbc.num_representatives());
  EXPECT_LE(r1, r5 + 1e-9);
  EXPECT_NEAR(r_all, 1.0, 1e-9);  // scanning every list is exhaustive
  EXPECT_GT(r5, 0.5) << "one-shot with s=5 should recover most neighbors";
}

TEST(Rbc, OneShotIsCheaperThanExhaustive) {
  const PointSet points = test::small_clustered(8, 4000, 23);
  const RandomBallCover rbc(&points);
  simt::Metrics m;
  rbc.query_one_shot(points[5], 8, 2, &m);
  EXPECT_LT(m.total_bytes(), points.byte_size());
}

TEST(Rbc, BatchAggregatesAndTimes) {
  const PointSet points = test::small_clustered(4, 1000, 29);
  const RandomBallCover rbc(&points);
  const PointSet queries = test::random_queries(4, 12, 31);
  const auto r = rbc.batch_exact(queries, 4);
  EXPECT_EQ(r.queries.size(), 12u);
  EXPECT_GT(r.timing.avg_query_ms, 0);
  EXPECT_GT(r.metrics.bytes_coalesced, 0u);
  EXPECT_EQ(r.metrics.bytes_random, 0u);  // RBC is all streaming
}

TEST(Rbc, DegenerateInputs) {
  PointSet one(3);
  one.append(std::vector<Scalar>{1, 2, 3});
  const RandomBallCover tiny(&one);
  tiny.validate();
  EXPECT_EQ(tiny.query_exact(std::vector<Scalar>{0, 0, 0}, 5).neighbors.size(), 1u);

  PointSet dup(2);
  for (int i = 0; i < 100; ++i) dup.append(std::vector<Scalar>{4, 4});
  const RandomBallCover dups(&dup);
  dups.validate();
  const auto r = dups.query_exact(std::vector<Scalar>{4, 4}, 10);
  ASSERT_EQ(r.neighbors.size(), 10u);
  for (const auto& e : r.neighbors) EXPECT_FLOAT_EQ(e.dist, 0.0F);
}

TEST(Rbc, Preconditions) {
  PointSet empty_set(2);
  EXPECT_THROW(RandomBallCover over_empty(&empty_set), InvalidArgument);
  const PointSet points = test::small_clustered(2, 50, 37);
  const RandomBallCover rbc(&points);
  EXPECT_THROW(rbc.query_exact(points[0], 0), InvalidArgument);
  EXPECT_THROW(rbc.query_one_shot(points[0], 1, 0), InvalidArgument);
  EXPECT_THROW(rbc.query_exact(std::vector<Scalar>{1, 2, 3}, 1), InvalidArgument);
}

TEST(RecallMetric, Basics) {
  std::vector<KnnHeap::Entry> got{{1.0F, 0}, {2.0F, 1}};
  const std::vector<Scalar> ref{1.0F, 2.0F};
  EXPECT_DOUBLE_EQ(recall(got, ref), 1.0);
  const std::vector<Scalar> ref2{1.0F, 3.0F};
  EXPECT_DOUBLE_EQ(recall(got, ref2), 0.5);
  EXPECT_DOUBLE_EQ(recall({}, ref), 0.0);
  EXPECT_DOUBLE_EQ(recall(got, {}), 1.0);
}

}  // namespace
}  // namespace psb::rbc
