// Tests for the binary kd-tree and its task-parallel GPU execution model.
#include <gtest/gtest.h>

#include <cmath>

#include "kdtree/kdtree.hpp"
#include "kdtree/task_parallel_knn.hpp"
#include "test_util.hpp"

namespace psb::kdtree {
namespace {

TEST(KdTree, BuildsValidStructure) {
  for (const std::size_t dims : {2u, 4u, 16u}) {
    const PointSet points = test::small_clustered(dims, 2000, dims);
    const KdTree tree(&points, 32);
    tree.validate();
    EXPECT_GT(tree.num_nodes(), points.size() / 32);
  }
}

TEST(KdTree, QueryMatchesReference) {
  const PointSet points = test::small_clustered(8, 3000, 55);
  const KdTree tree(&points, 32);
  const PointSet queries = test::random_queries(8, 20, 56);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto got = tree.query(queries[q], 16);
    const auto expected = test::reference_knn_distances(points, queries[q], 16);
    test::expect_knn_matches(got, expected, "kdtree");
  }
}

TEST(KdTree, SmallAndDegenerateInputs) {
  PointSet one(2);
  one.append(std::vector<Scalar>{1, 1});
  const KdTree t1(&one, 4);
  t1.validate();
  EXPECT_EQ(t1.query(std::vector<Scalar>{0, 0}, 1)[0].dist, std::sqrt(2.0F));

  PointSet dup(2);
  for (int i = 0; i < 100; ++i) dup.append(std::vector<Scalar>{3, 3});
  const KdTree t2(&dup, 8);
  t2.validate();
  EXPECT_EQ(t2.query(std::vector<Scalar>{3, 3}, 5).size(), 5u);
}

TEST(KdTree, KGreaterThanN) {
  const PointSet points = test::small_clustered(3, 10, 57);
  const KdTree tree(&points, 4);
  EXPECT_EQ(tree.query(std::vector<Scalar>{0, 0, 0}, 50).size(), 10u);
}

TEST(KdTree, Preconditions) {
  PointSet empty(2);
  EXPECT_THROW(KdTree(&empty, 4), InvalidArgument);
  EXPECT_THROW(KdTree(nullptr, 4), InvalidArgument);
}

TEST(TaskParallelKnn, ExactResults) {
  const PointSet points = test::small_clustered(8, 3000, 61);
  const KdTree tree(&points, 32);
  const PointSet queries = test::random_queries(8, 33, 62);
  TaskParallelOptions opts;
  opts.k = 8;
  const knn::BatchResult r = task_parallel_knn(tree, queries, opts);
  ASSERT_EQ(r.queries.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto expected = test::reference_knn_distances(points, queries[q], 8);
    test::expect_knn_matches(r.queries[q].neighbors, expected, "task-parallel");
  }
}

TEST(TaskParallelKnn, ResponseTimeModeEfficiencyIsOneLane) {
  // Fig. 6(a): the task-parallel binary kd-tree shows ~3 % warp efficiency —
  // exactly one active lane of 32.
  const PointSet points = test::small_clustered(16, 2000, 63);
  const KdTree tree(&points, 32);
  const PointSet queries = test::random_queries(16, 10, 64);
  TaskParallelOptions opts;
  const knn::BatchResult r = task_parallel_knn(tree, queries, opts);
  EXPECT_NEAR(r.metrics.warp_efficiency(), 1.0 / 32.0, 1e-9);
}

TEST(TaskParallelKnn, ThroughputModeEfficiencyBetween) {
  const PointSet points = test::small_clustered(16, 2000, 65);
  const KdTree tree(&points, 32);
  const PointSet queries = test::random_queries(16, 64, 66);
  TaskParallelOptions opts;
  opts.mode = TaskParallelMode::kThroughput;
  const knn::BatchResult r = task_parallel_knn(tree, queries, opts);
  // Packed lanes: better than single-lane, worse than perfect (divergence).
  EXPECT_GT(r.metrics.warp_efficiency(), 1.0 / 32.0);
  EXPECT_LT(r.metrics.warp_efficiency(), 1.0);
}

TEST(TaskParallelKnn, AllTrafficIsScattered) {
  const PointSet points = test::small_clustered(8, 1000, 67);
  const KdTree tree(&points, 16);
  const PointSet queries = test::random_queries(8, 5, 68);
  const knn::BatchResult r = task_parallel_knn(tree, queries, {});
  EXPECT_GT(r.metrics.bytes_random, 0u);
  EXPECT_EQ(r.metrics.bytes_coalesced, 0u);
}

}  // namespace
}  // namespace psb::kdtree
