// Tests for minimum-bounding-sphere algorithms: Ritter (sequential and
// parallel, paper Alg. 2) validated against the exact Welzl oracle.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "mbs/parallel_ritter.hpp"
#include "mbs/ritter.hpp"
#include "mbs/welzl.hpp"
#include "test_util.hpp"

namespace psb::mbs {
namespace {

bool sphere_covers_all(const Sphere& s, const PointSet& points) {
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!s.contains(points[i], 1e-3F)) return false;
  }
  return true;
}

class RitterCoverageTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RitterCoverageTest, CoversAllPointsInAnyDimension) {
  const std::size_t dims = GetParam();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const PointSet points = test::small_clustered(dims, 300, seed);
    const Sphere s = ritter_points(points);
    EXPECT_TRUE(sphere_covers_all(s, points)) << "dims=" << dims << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, RitterCoverageTest,
                         ::testing::Values<std::size_t>(1, 2, 3, 4, 8, 16, 32, 64));

TEST(Welzl, ExactOnKnownConfigurations) {
  // Two points: diameter sphere.
  PointSet two(2);
  two.append(std::vector<Scalar>{0, 0});
  two.append(std::vector<Scalar>{4, 0});
  Sphere s = welzl(two);
  EXPECT_NEAR(s.radius, 2.0, 1e-4);
  EXPECT_NEAR(s.center[0], 2.0, 1e-4);

  // Equilateral-ish triangle with an interior point: circumcircle of the hull.
  PointSet tri(2);
  tri.append(std::vector<Scalar>{0, 0});
  tri.append(std::vector<Scalar>{2, 0});
  tri.append(std::vector<Scalar>{1, 1.7320508F});
  tri.append(std::vector<Scalar>{1, 0.5F});  // interior
  s = welzl(tri);
  EXPECT_NEAR(s.radius, 2.0 / std::sqrt(3.0), 1e-3);
}

TEST(Welzl, CoversAllAndIsMinimalAgainstShrink) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const PointSet points = test::small_clustered(3, 120, seed * 7);
    const Sphere s = welzl(points);
    EXPECT_TRUE(sphere_covers_all(s, points));
    // Minimality witness: a sphere with 1% smaller radius (same center)
    // must miss at least one point.
    Sphere smaller = s;
    smaller.radius *= 0.99F;
    bool all_in = true;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (distance(smaller.center, points[i]) > smaller.radius) {
        all_in = false;
        break;
      }
    }
    EXPECT_FALSE(all_in) << "welzl sphere is not tight (seed " << seed << ")";
  }
}

TEST(Ritter, WithinPaperApproximationBandOfWelzl) {
  // The paper quotes Ritter at 5–20 % above optimal; allow up to 30 %.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    for (const std::size_t dims : {2u, 3u, 4u}) {
      const PointSet points = test::small_clustered(dims, 150, seed * 13);
      const Sphere approx = ritter_points(points);
      const Sphere exact = welzl(points);
      EXPECT_GE(approx.radius, exact.radius * 0.999F);
      EXPECT_LE(approx.radius, exact.radius * 1.30F)
          << "dims=" << dims << " seed=" << seed;
    }
  }
}

TEST(Ritter, DegenerateInputs) {
  // Single point.
  PointSet one(3);
  one.append(std::vector<Scalar>{1, 2, 3});
  Sphere s = ritter_points(one);
  EXPECT_FLOAT_EQ(s.radius, 0.0F);
  EXPECT_TRUE(s.contains(one[0]));

  // All points identical.
  PointSet dup(2);
  for (int i = 0; i < 20; ++i) dup.append(std::vector<Scalar>{5, 5});
  s = ritter_points(dup);
  EXPECT_NEAR(s.radius, 0.0F, 1e-5);

  // Collinear points.
  PointSet line(2);
  for (int i = 0; i <= 10; ++i) line.append(std::vector<Scalar>{Scalar(i), 0});
  s = ritter_points(line);
  EXPECT_TRUE(sphere_covers_all(s, line));
  EXPECT_NEAR(s.radius, 5.0F, 0.05F);
}

TEST(RitterSpheres, EnclosesChildSpheresEntirely) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Sphere> children;
    for (int i = 0; i < 30; ++i) {
      Sphere c;
      c.center = {static_cast<Scalar>(rng.uniform(-100, 100)),
                  static_cast<Scalar>(rng.uniform(-100, 100)),
                  static_cast<Scalar>(rng.uniform(-100, 100))};
      c.radius = static_cast<Scalar>(rng.uniform(0, 10));
      children.push_back(std::move(c));
    }
    const Sphere s = ritter_spheres(children);
    for (const Sphere& c : children) {
      EXPECT_TRUE(s.contains(c, 1e-3F))
          << "trial " << trial << ": child sphere escapes the parent";
    }
  }
}

TEST(RitterSpheres, ConcentricChildren) {
  std::vector<Sphere> children;
  children.push_back({{0, 0}, 1});
  children.push_back({{0, 0}, 5});
  children.push_back({{0, 0}, 3});
  const Sphere s = ritter_spheres(children);
  EXPECT_NEAR(s.radius, 5.0F, 1e-4);
}

TEST(ParallelRitter, MatchesCoverageAndChargesWork) {
  simt::DeviceSpec spec;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const PointSet points = test::small_clustered(8, 128, seed * 19);
    std::vector<PointId> ids(points.size());
    std::iota(ids.begin(), ids.end(), PointId{0});

    simt::Metrics m;
    simt::Block block(spec, 128, &m);
    const Sphere s = parallel_ritter_points(block, points, ids);
    EXPECT_TRUE(sphere_covers_all(s, points));
    EXPECT_GT(m.warp_instructions, 0u);
    EXPECT_GT(m.bytes_coalesced, 0u);
    EXPECT_GT(m.shared_bytes, 0u);

    // The parallel variant is the same algorithm family as sequential Ritter:
    // radii must be within a few percent of each other.
    const Sphere seq = ritter_points(points, ids);
    EXPECT_NEAR(s.radius / seq.radius, 1.0, 0.15);
  }
}

TEST(ParallelRitter, SphereChildren) {
  simt::DeviceSpec spec;
  simt::Metrics m;
  simt::Block block(spec, 64, &m);
  Rng rng(11);
  std::vector<Sphere> children;
  for (int i = 0; i < 64; ++i) {
    children.push_back({{static_cast<Scalar>(rng.uniform(0, 50)),
                         static_cast<Scalar>(rng.uniform(0, 50))},
                        static_cast<Scalar>(rng.uniform(0, 5))});
  }
  const Sphere s = parallel_ritter(block, children);
  for (const Sphere& c : children) EXPECT_TRUE(s.contains(c, 1e-3F));
}

TEST(Mbs, EmptyInputsThrow) {
  PointSet empty(2);
  EXPECT_THROW(ritter_points(empty), InvalidArgument);
  EXPECT_THROW(welzl(empty), InvalidArgument);
  EXPECT_THROW(ritter_spheres({}), InvalidArgument);
}

}  // namespace
}  // namespace psb::mbs
