// Tests for SS-tree persistence: round-trips across builders and bounds
// modes, dataset-mismatch detection, corrupt-file rejection.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "knn/psb.hpp"
#include "sstree/builders.hpp"
#include "sstree/serialize.hpp"
#include "test_util.hpp"

namespace psb::sstree {
namespace {

std::string temp_path(const char* name) { return ::testing::TempDir() + "/" + name; }

TEST(Serialize, RoundTripPreservesStructureAndAnswers) {
  const PointSet points = test::small_clustered(8, 1200, 3);
  const SSTree original = build_kmeans(points, 32).tree;
  const std::string path = temp_path("rt.psbt");
  write_index(original, path);
  const SSTree loaded = read_index(&points, path);

  EXPECT_EQ(loaded.num_nodes(), original.num_nodes());
  EXPECT_EQ(loaded.degree(), original.degree());
  EXPECT_EQ(loaded.root(), original.root());
  EXPECT_EQ(loaded.leaves().size(), original.leaves().size());

  // Identical query behavior, bit for bit on the metrics.
  const PointSet queries = test::random_queries(8, 8, 5);
  knn::GpuKnnOptions opts;
  opts.k = 16;
  const auto a = knn::psb_batch(original, queries, opts);
  const auto b = knn::psb_batch(loaded, queries, opts);
  EXPECT_EQ(a.metrics.total_bytes(), b.metrics.total_bytes());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    ASSERT_EQ(a.queries[q].neighbors.size(), b.queries[q].neighbors.size());
    for (std::size_t i = 0; i < a.queries[q].neighbors.size(); ++i) {
      EXPECT_EQ(a.queries[q].neighbors[i].dist, b.queries[q].neighbors[i].dist);
    }
  }
  std::remove(path.c_str());
}

TEST(Serialize, AllBuildersAndModes) {
  const PointSet points = test::small_clustered(4, 600, 7);
  std::vector<SSTree> trees;
  trees.push_back(build_hilbert(points, 16).tree);
  trees.push_back(build_topdown(points, 16).tree);
  KMeansBuildOptions rect_opts;
  rect_opts.bounds = BoundsMode::kRect;
  trees.push_back(build_kmeans(points, 16, rect_opts).tree);

  for (std::size_t i = 0; i < trees.size(); ++i) {
    const std::string path = temp_path(("builders" + std::to_string(i) + ".psbt").c_str());
    write_index(trees[i], path);
    const SSTree loaded = read_index(&points, path);  // read_index validates
    EXPECT_EQ(loaded.bounds_mode(), trees[i].bounds_mode());
    EXPECT_EQ(loaded.num_nodes(), trees[i].num_nodes());
    std::remove(path.c_str());
  }
}

TEST(Serialize, RejectsDatasetMismatch) {
  const PointSet points = test::small_clustered(4, 500, 9);
  const SSTree tree = build_hilbert(points, 16).tree;
  const std::string path = temp_path("mismatch.psbt");
  write_index(tree, path);

  const PointSet other = test::small_clustered(4, 400, 11);
  EXPECT_THROW(read_index(&other, path), InvalidArgument);
  const PointSet wrong_dims = test::small_clustered(8, 500, 11);
  EXPECT_THROW(read_index(&wrong_dims, path), InvalidArgument);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsCorruptFiles) {
  const PointSet points = test::small_clustered(4, 100, 13);
  const std::string path = temp_path("corrupt.psbt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "garbage bytes, definitely not an index";
  }
  EXPECT_THROW(read_index(&points, path), CorruptIndex);
  EXPECT_THROW(read_index(&points, "/no/such/file.psbt"), IoError);
  std::remove(path.c_str());
}

TEST(Serialize, TruncatedFileRejected) {
  const PointSet points = test::small_clustered(4, 500, 15);
  const SSTree tree = build_hilbert(points, 16).tree;
  const std::string path = temp_path("trunc.psbt");
  write_index(tree, path);
  // Truncate to half size.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto full = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<char> bytes(full / 2);
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(read_index(&points, path), CorruptIndex);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace psb::sstree
