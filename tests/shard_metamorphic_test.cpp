// Metamorphic properties of the sharded engine's result cache and online
// update path:
//   * Caching is invisible in results: a batch answered with the cache on is
//     bit-identical to the cache-off run, and repeated / permuted /
//     duplicated batches are served from the cache without changing a bit.
//   * Updates restore exactness: an insert or erase through the engine
//     invalidates every affected cached cell, and the next batch matches the
//     exhaustive oracle over the mutated dataset exactly.
#include <algorithm>
#include <numeric>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "common/geometry.hpp"
#include "common/points.hpp"
#include "obs/registry.hpp"
#include "shard/sharded_engine.hpp"
#include "test_util.hpp"

namespace psb {
namespace {

std::vector<KnnHeap::Entry> oracle_knn(const PointSet& data, std::span<const Scalar> q,
                                       std::size_t k,
                                       const std::vector<std::uint8_t>* alive = nullptr) {
  std::size_t population = data.size();
  if (alive != nullptr) {
    population = static_cast<std::size_t>(std::count(alive->begin(), alive->end(), 1));
  }
  KnnHeap heap(std::min(k, population));
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (alive != nullptr && !(*alive)[i]) continue;
    heap.offer(distance(q, data[i]), static_cast<PointId>(i));
  }
  return heap.sorted();
}

void expect_bit_identical(const std::vector<KnnHeap::Entry>& got,
                          const std::vector<KnnHeap::Entry>& want, const char* label,
                          std::size_t query) {
  ASSERT_EQ(got.size(), want.size()) << label << " query " << query;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << label << " query " << query << " rank " << i;
    EXPECT_EQ(got[i].dist, want[i].dist) << label << " query " << query << " rank " << i;
  }
}

std::uint64_t counter_delta(const obs::Registry::Snapshot& before,
                            const obs::Registry::Snapshot& after, std::string_view name) {
  const auto find = [&](const obs::Registry::Snapshot& s) -> std::uint64_t {
    for (const auto& [n, v] : s.counters) {
      if (n == name) return v;
    }
    return 0;
  };
  return find(after) - find(before);
}

shard::ShardedEngineOptions cached_options(std::size_t cache_capacity) {
  shard::ShardedEngineOptions opts;
  opts.num_shards = 4;
  opts.engine.gpu.k = 8;
  opts.cache_capacity = cache_capacity;
  return opts;
}

TEST(ShardMetamorphicTest, CacheOnEqualsCacheOff) {
  const PointSet data = test::small_clustered(3, 400, 42);
  const PointSet queries = test::random_queries(3, 24, 43);
  shard::ShardedEngine cached(data, cached_options(64));
  shard::ShardedEngine uncached(data, cached_options(0));
  const knn::BatchResult with_cache = cached.run(queries);
  const knn::BatchResult without = uncached.run(queries);
  ASSERT_EQ(with_cache.queries.size(), without.queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    expect_bit_identical(with_cache.queries[q].neighbors, without.queries[q].neighbors,
                         "cache-on vs cache-off", q);
  }
}

TEST(ShardMetamorphicTest, RepeatedBatchIsServedFromCache) {
  const PointSet data = test::small_clustered(3, 300, 7);
  const PointSet queries = test::random_queries(3, 16, 8);
  shard::ShardedEngine eng(data, cached_options(64));

  const knn::BatchResult first = eng.run(queries);
  const obs::Registry::Snapshot before = obs::Registry::global().snapshot();
  const knn::BatchResult second = eng.run(queries);
  const obs::Registry::Snapshot after = obs::Registry::global().snapshot();

  EXPECT_EQ(counter_delta(before, after, "engine.shard.cache_hits"), queries.size());
  EXPECT_EQ(counter_delta(before, after, "engine.shard.cache_misses"), 0u);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    expect_bit_identical(second.queries[q].neighbors, first.queries[q].neighbors,
                         "repeat batch", q);
  }
}

TEST(ShardMetamorphicTest, PermutedBatchIsServedFromCacheUnchanged) {
  const PointSet data = test::small_clustered(4, 300, 17);
  const PointSet queries = test::random_queries(4, 20, 18);
  shard::ShardedEngine eng(data, cached_options(64));
  const knn::BatchResult first = eng.run(queries);

  // Reversed order: every query is already cached; answers must be the same
  // entries, permuted.
  PointSet reversed(queries.dims());
  for (std::size_t q = queries.size(); q-- > 0;) reversed.append(queries[q]);
  const obs::Registry::Snapshot before = obs::Registry::global().snapshot();
  const knn::BatchResult second = eng.run(reversed);
  const obs::Registry::Snapshot after = obs::Registry::global().snapshot();

  EXPECT_EQ(counter_delta(before, after, "engine.shard.cache_hits"), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    expect_bit_identical(second.queries[q].neighbors,
                         first.queries[queries.size() - 1 - q].neighbors, "permuted batch", q);
  }
}

TEST(ShardMetamorphicTest, DuplicateQueriesWithinOneBatchHitTheCache) {
  const PointSet data = test::small_clustered(2, 200, 31);
  const PointSet unique = test::random_queries(2, 10, 32);
  PointSet doubled(unique.dims());
  for (std::size_t q = 0; q < unique.size(); ++q) doubled.append(unique[q]);
  for (std::size_t q = 0; q < unique.size(); ++q) doubled.append(unique[q]);

  shard::ShardedEngine eng(data, cached_options(64));
  const obs::Registry::Snapshot before = obs::Registry::global().snapshot();
  const knn::BatchResult res = eng.run(doubled);
  const obs::Registry::Snapshot after = obs::Registry::global().snapshot();

  EXPECT_EQ(counter_delta(before, after, "engine.shard.cache_misses"), unique.size());
  EXPECT_EQ(counter_delta(before, after, "engine.shard.cache_hits"), unique.size());
  for (std::size_t q = 0; q < unique.size(); ++q) {
    expect_bit_identical(res.queries[unique.size() + q].neighbors, res.queries[q].neighbors,
                         "duplicate within batch", q);
  }
}

TEST(ShardMetamorphicTest, InsertInvalidatesAffectedCellsAndRestoresExactness) {
  PointSet data = test::small_clustered(3, 256, 55);
  const PointSet queries = test::random_queries(3, 12, 56);
  shard::ShardedEngine eng(data, cached_options(64));
  (void)eng.run(queries);  // warm the cache

  // Insert a point exactly at query 0: distance zero, so it must displace
  // query 0's cached answer (and any neighbor cell it lands in).
  const std::vector<Scalar> p(queries[0].begin(), queries[0].end());
  const obs::Registry::Snapshot before = obs::Registry::global().snapshot();
  const PointId new_id = eng.insert(p);
  const obs::Registry::Snapshot after = obs::Registry::global().snapshot();
  EXPECT_EQ(new_id, data.size());
  EXPECT_GE(counter_delta(before, after, "engine.shard.cache_invalidated"), 1u);

  data.append(p);  // mirror the mutation in the oracle's dataset
  const knn::BatchResult res = eng.run(queries);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    expect_bit_identical(res.queries[q].neighbors,
                         oracle_knn(data, queries[q], eng.options().engine.gpu.k),
                         "post-insert", q);
  }
  EXPECT_EQ(res.queries[0].neighbors.front().id, new_id);
  EXPECT_EQ(res.queries[0].neighbors.front().dist, 0.0F);
}

TEST(ShardMetamorphicTest, EraseInvalidatesContainingEntriesAndRestoresExactness) {
  PointSet data = test::small_clustered(3, 256, 71);
  const PointSet queries = test::random_queries(3, 12, 72);
  shard::ShardedEngine eng(data, cached_options(64));
  const knn::BatchResult warm = eng.run(queries);

  // Erase query 0's current nearest neighbor: its cached entry must drop and
  // the fresh answer must match the oracle over the surviving points.
  const PointId victim = warm.queries[0].neighbors.front().id;
  const obs::Registry::Snapshot before = obs::Registry::global().snapshot();
  ASSERT_TRUE(eng.erase(victim));
  const obs::Registry::Snapshot after = obs::Registry::global().snapshot();
  EXPECT_GE(counter_delta(before, after, "engine.shard.cache_invalidated"), 1u);
  EXPECT_FALSE(eng.erase(victim)) << "double erase must report false";

  std::vector<std::uint8_t> alive(data.size(), 1);
  alive[victim] = 0;
  const knn::BatchResult res = eng.run(queries);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    expect_bit_identical(res.queries[q].neighbors,
                         oracle_knn(data, queries[q], eng.options().engine.gpu.k, &alive),
                         "post-erase", q);
    for (const KnnHeap::Entry& e : res.queries[q].neighbors) EXPECT_NE(e.id, victim);
  }
}

TEST(ShardMetamorphicTest, UpdateChurnStaysExactAcrossShardCounts) {
  // Interleave inserts, erases and batches; every batch must match the
  // oracle over the current alive set — with and without the cache, and on
  // the single-shard configuration (whose delegate drops after the first
  // erase).
  for (const std::size_t shards : {1u, 4u, 13u}) {
    for (const std::size_t cache : {0u, 32u}) {
      PointSet data = test::small_clustered(2, 120, 90 + shards);
      shard::ShardedEngineOptions opts = cached_options(cache);
      opts.num_shards = shards;
      opts.engine.gpu.k = 5;
      shard::ShardedEngine eng(data, opts);
      std::vector<std::uint8_t> alive(data.size(), 1);
      Rng rng(1000 + shards * 10 + cache);
      const PointSet queries = test::random_queries(2, 6, 91);

      for (int round = 0; round < 4; ++round) {
        // Two random erases (ignoring already-dead ids) and one insert.
        for (int e = 0; e < 2; ++e) {
          const PointId id = static_cast<PointId>(rng.next_below(alive.size()));
          EXPECT_EQ(eng.erase(id), alive[id] == 1);
          alive[id] = 0;
        }
        std::vector<Scalar> p(2);
        for (auto& v : p) v = static_cast<Scalar>(rng.uniform(0.0, 1000.0));
        const PointId id = eng.insert(p);
        EXPECT_EQ(id, data.size());
        data.append(p);
        alive.push_back(1);

        const knn::BatchResult res = eng.run(queries);
        for (std::size_t q = 0; q < queries.size(); ++q) {
          expect_bit_identical(res.queries[q].neighbors,
                               oracle_knn(data, queries[q], opts.engine.gpu.k, &alive),
                               "churn round", q);
        }
      }
    }
  }
}

}  // namespace
}  // namespace psb
