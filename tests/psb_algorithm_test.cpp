// PSB-specific behavioral tests: the properties that make Algorithm 1 what it
// is — monotonic left-to-right leaf scanning, coalesced sibling traffic,
// ablation switches, and the relationships to branch-and-bound the paper
// reports (§V-B, §V-D).
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "data/synthetic.hpp"
#include "knn/branch_and_bound.hpp"
#include "knn/brute_force.hpp"
#include "knn/psb.hpp"
#include "sstree/builders.hpp"
#include "test_util.hpp"

namespace psb::knn {
namespace {

// The tree holds a pointer into `points`, so the workload lives on the heap
// at a stable address.
struct Workload {
  PointSet points;
  PointSet queries;
  std::optional<sstree::SSTree> treeval;

  const sstree::SSTree& tree() const { return *treeval; }
};

std::unique_ptr<Workload> make_workload(std::size_t dims = 16, std::size_t n = 4000,
                                        std::size_t degree = 64) {
  auto w = std::make_unique<Workload>();
  w->points = test::small_clustered(dims, n, 1234);
  w->queries = test::random_queries(dims, 16, 987);
  w->treeval.emplace(sstree::build_kmeans(w->points, degree).tree);
  return w;
}

TEST(PsbBehavior, ProducesCoalescedLeafTraffic) {
  const auto w = make_workload();
  GpuKnnOptions opts;
  const BatchResult psb_r = psb_batch(w->tree(), w->queries, opts);
  const BatchResult bnb_r = bnb_batch(w->tree(), w->queries, opts);
  // PSB's defining optimization: a large share of its traffic is linear
  // sibling scanning; B&B's traffic is all pointer-chasing.
  EXPECT_GT(psb_r.metrics.bytes_coalesced, 0u);
  EXPECT_EQ(bnb_r.metrics.bytes_coalesced, 0u);
}

TEST(PsbBehavior, AblationsRemainExact) {
  const auto w = make_workload(8, 2000, 32);
  for (const bool descent : {true, false}) {
    for (const bool scan : {true, false}) {
      GpuKnnOptions opts;
      opts.k = 16;
      opts.psb_initial_descent = descent;
      opts.psb_leaf_scan = scan;
      const BatchResult r = psb_batch(w->tree(), w->queries, opts);
      for (std::size_t q = 0; q < w->queries.size(); ++q) {
        const auto expected = test::reference_knn_distances(w->points, w->queries[q], opts.k);
        test::expect_knn_matches(r.queries[q].neighbors, expected,
                                 descent ? (scan ? "full" : "no-scan")
                                         : (scan ? "no-descent" : "neither"));
      }
    }
  }
}

TEST(PsbBehavior, InitialDescentTightensEarlyPruning) {
  const auto w = make_workload();
  GpuKnnOptions with;
  GpuKnnOptions without;
  without.psb_initial_descent = false;
  const BatchResult a = psb_batch(w->tree(), w->queries, with);
  const BatchResult b = psb_batch(w->tree(), w->queries, without);
  // Without the initial bound the scan starts unpruned and must touch at
  // least as many leaves (the descent itself adds one leaf per query).
  EXPECT_LE(a.stats.leaves_visited, b.stats.leaves_visited + w->queries.size());
}

TEST(PsbBehavior, WarpEfficiencyIsHigh) {
  // §V-C headline: data-parallel SS-tree traversal > 50 % warp efficiency.
  const auto w = make_workload(64, 4000, 128);
  GpuKnnOptions opts;
  const BatchResult r = psb_batch(w->tree(), w->queries, opts);
  EXPECT_GT(r.metrics.warp_efficiency(), 0.5);
}

TEST(PsbBehavior, LeafVisitsAreMonotonicLeftToRight) {
  // Structural check via stats: each query scans every leaf at most once, so
  // leaf visits can never exceed the leaf count plus the initial descent.
  const auto w = make_workload(4, 3000, 32);
  GpuKnnOptions opts;
  for (std::size_t q = 0; q < w->queries.size(); ++q) {
    const QueryResult r = psb_query(w->tree(), w->queries[q], opts, nullptr);
    EXPECT_LE(r.stats.leaves_visited, w->tree().leaves().size() + 1);
  }
}

TEST(PsbBehavior, ClusteredQueriesVisitFewLeaves) {
  // A query on a data point in clustered data should prune the vast majority
  // of the tree (this is what makes tree indexing beat brute force, Fig. 7).
  const auto w = make_workload(16, 6000, 64);
  GpuKnnOptions opts;
  opts.k = 8;
  const QueryResult r = psb_query(w->tree(), w->points[100], opts, nullptr);
  EXPECT_LT(r.stats.leaves_visited, w->tree().leaves().size() / 2);
}

TEST(PsbBehavior, FasterThanBnbOnClusteredData) {
  // §V headline: PSB consistently outperforms branch-and-bound.
  const auto w = make_workload(64, 8000, 128);
  GpuKnnOptions opts;
  const BatchResult psb_r = psb_batch(w->tree(), w->queries, opts);
  const BatchResult bnb_r = bnb_batch(w->tree(), w->queries, opts);
  EXPECT_LT(psb_r.timing.avg_query_ms, bnb_r.timing.avg_query_ms);
}

TEST(PsbBehavior, TreeBeatsBruteForceOnClusteredData) {
  // Paper setting: clustered data AND clustered queries (uniform queries in
  // 32-d are the curse-of-dimensionality regime where trees rightfully lose).
  const auto w = make_workload(32, 20000, 128);
  const PointSet queries = data::sample_queries(w->points, 16, 0.0, 5);
  GpuKnnOptions opts;
  const BatchResult psb_r = psb_batch(w->tree(), queries, opts);
  const BatchResult brute_r = brute_force_batch(w->points, queries, opts);
  EXPECT_LT(psb_r.metrics.total_bytes(), brute_r.metrics.total_bytes());
  EXPECT_LT(psb_r.timing.avg_query_ms, brute_r.timing.avg_query_ms);
}

TEST(PsbBehavior, SpillModeShrinksSharedFootprint) {
  const auto w = make_workload(8, 3000, 64);
  GpuKnnOptions shared;
  shared.k = 512;
  GpuKnnOptions spill = shared;
  spill.spill_heap_to_global = true;
  const BatchResult a = psb_batch(w->tree(), w->queries, shared);
  const BatchResult b = psb_batch(w->tree(), w->queries, spill);
  EXPECT_LT(b.metrics.shared_bytes, a.metrics.shared_bytes);
  EXPECT_GT(b.timing.occupancy, a.timing.occupancy);
}

TEST(PsbBehavior, StatsAreInternallyConsistent) {
  const auto w = make_workload(8, 2000, 32);
  GpuKnnOptions opts;
  const BatchResult r = psb_batch(w->tree(), w->queries, opts);
  EXPECT_GE(r.stats.nodes_visited, r.stats.leaves_visited);
  EXPECT_GE(r.stats.points_examined, r.stats.leaves_visited);  // leaves are non-empty
  EXPECT_EQ(r.metrics.node_fetches, r.stats.nodes_visited);
  EXPECT_EQ(r.queries.size(), w->queries.size());
}

}  // namespace
}  // namespace psb::knn
