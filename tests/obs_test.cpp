// Tests of the observability subsystem: registry semantics, trace session
// lifecycle, exporter determinism (the byte-identical contract the regression
// gate relies on), and the tentpole invariant that every kNN algorithm emits
// a per-query trace when a session is active — and emits nothing when not.
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "data/synthetic.hpp"
#include "knn/best_first.hpp"
#include "knn/branch_and_bound.hpp"
#include "knn/brute_force.hpp"
#include "knn/psb.hpp"
#include "knn/stackless_baselines.hpp"
#include "knn/task_parallel_sstree.hpp"
#include "obs/export.hpp"
#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sstree/builders.hpp"
#include "test_util.hpp"

namespace psb {
namespace {

using obs::TraceCounter;

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, CountersAccumulateAndSnapshotSorted) {
  obs::Registry reg;
  reg.add("zeta.count", 3);
  reg.add("alpha.count", 1);
  reg.counter("zeta.count").fetch_add(2);
  reg.add_timer_seconds("build", 0.5);

  const obs::Registry::Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2U);
  EXPECT_EQ(snap.counters[0].first, "alpha.count");  // sorted by name
  EXPECT_EQ(snap.counters[0].second, 1U);
  EXPECT_EQ(snap.counters[1].first, "zeta.count");
  EXPECT_EQ(snap.counters[1].second, 5U);
  ASSERT_EQ(snap.timers_seconds.size(), 1U);
  EXPECT_DOUBLE_EQ(snap.timers_seconds[0].second, 0.5);

  reg.reset();  // zeroes values, keeps registrations
  const obs::Registry::Snapshot after = reg.snapshot();
  ASSERT_EQ(after.counters.size(), 2U);
  EXPECT_EQ(after.counters[0].second, 0U);
  EXPECT_EQ(after.counters[1].second, 0U);
  ASSERT_EQ(after.timers_seconds.size(), 1U);
  EXPECT_DOUBLE_EQ(after.timers_seconds[0].second, 0.0);
}

TEST(Registry, CounterAddressesAreStableAcrossGrowth) {
  obs::Registry reg;
  std::atomic<std::uint64_t>& first = reg.counter("first");
  for (int i = 0; i < 200; ++i) reg.counter("c" + std::to_string(i));
  first.fetch_add(7);
  EXPECT_EQ(reg.counter("first").load(), 7U);
}

TEST(Registry, ConcurrentAddsAreLossless) {
  obs::Registry reg;
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&reg] {
      for (int i = 0; i < 1000; ++i) reg.add("hits", 1);
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(reg.counter("hits").load(), 4000U);
}

// ---------------------------------------------------------------------------
// Histogram (the streaming layer's SLO metrics)
// ---------------------------------------------------------------------------

TEST(Histogram, EmptyHistogramIsAllZeros) {
  obs::Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0U);
  EXPECT_EQ(h.min(), 0U);
  EXPECT_EQ(h.max(), 0U);
  EXPECT_EQ(h.sum(), 0U);
  EXPECT_EQ(h.percentile(50), 0U);
  EXPECT_EQ(h.percentile(99), 0U);
  EXPECT_TRUE(h.buckets().empty());
  obs::JsonWriter w;
  w.begin_object();
  h.export_fields(w, "lat");
  w.end_object();
  const std::string doc = w.str();
  EXPECT_NE(doc.find("\"lat.count\": 0"), std::string::npos);
  EXPECT_EQ(doc.find("le_"), std::string::npos);  // no empty buckets emitted
}

TEST(Histogram, PercentileIsExactNearestRank) {
  obs::Histogram h;
  // Insertion order must not matter: percentiles are over the sorted multiset.
  for (const std::uint64_t v : {30U, 10U, 40U, 20U}) h.add(v);
  // n = 4: rank = ceil(p/100 * 4), so p50 -> 2nd smallest, p99 -> 4th.
  EXPECT_EQ(h.percentile(25), 10U);
  EXPECT_EQ(h.percentile(50), 20U);
  EXPECT_EQ(h.percentile(75), 30U);
  EXPECT_EQ(h.percentile(99), 40U);
  EXPECT_EQ(h.percentile(100), 40U);
  EXPECT_EQ(h.min(), 10U);
  EXPECT_EQ(h.max(), 40U);
  EXPECT_EQ(h.sum(), 100U);

  // Duplicates count as distinct samples in the rank.
  obs::Histogram dup;
  for (const std::uint64_t v : {5U, 5U, 5U, 100U}) dup.add(v);
  EXPECT_EQ(dup.percentile(75), 5U);
  EXPECT_EQ(dup.percentile(76), 100U);
}

TEST(Histogram, PowerOfTwoBucketsCoverValuesOnce) {
  obs::Histogram h;
  // 0 and 1 land in the first bucket (upper = 1); each other value v lands in
  // the unique bucket with upper/2 < v <= upper.
  for (const std::uint64_t v : {0U, 1U, 2U, 3U, 4U, 5U, 8U, 9U, 1000U}) h.add(v);
  const std::vector<obs::Histogram::Bucket> buckets = h.buckets();
  ASSERT_EQ(buckets.size(), 6U);
  EXPECT_EQ(buckets[0].upper, 1U);
  EXPECT_EQ(buckets[0].count, 2U);  // 0, 1
  EXPECT_EQ(buckets[1].upper, 2U);
  EXPECT_EQ(buckets[1].count, 1U);  // 2
  EXPECT_EQ(buckets[2].upper, 4U);
  EXPECT_EQ(buckets[2].count, 2U);  // 3, 4
  EXPECT_EQ(buckets[3].upper, 8U);
  EXPECT_EQ(buckets[3].count, 2U);  // 5, 8
  EXPECT_EQ(buckets[4].upper, 16U);
  EXPECT_EQ(buckets[4].count, 1U);  // 9
  EXPECT_EQ(buckets[5].upper, 1024U);
  EXPECT_EQ(buckets[5].count, 1U);  // 1000
  std::uint64_t total = 0;
  for (const obs::Histogram::Bucket& b : buckets) total += b.count;
  EXPECT_EQ(total, h.count());
}

TEST(Histogram, ExportFieldsAreDeterministicInTheRecordedMultiset) {
  const auto build = [](const std::vector<std::uint64_t>& values) {
    obs::Histogram h;
    for (const std::uint64_t v : values) h.add(v);
    obs::JsonWriter w;
    w.begin_object();
    h.export_fields(w, "lat");
    w.end_object();
    return w.str();
  };
  // Same multiset, different insertion orders: byte-identical export.
  const std::string a = build({120, 45, 3000, 45, 7});
  const std::string b = build({7, 3000, 45, 120, 45});
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"lat.count\": 5"), std::string::npos);
  EXPECT_NE(a.find("\"lat.p50\": 45"), std::string::npos);
  EXPECT_NE(a.find("\"lat.p99\": 3000"), std::string::npos);
  EXPECT_NE(a.find("\"lat.le_8\": 1"), std::string::npos);
  // A different multiset changes the bytes.
  EXPECT_NE(build({120, 45, 3000, 45, 8}), a);
}

TEST(Histogram, MergeEqualsHistogramOfConcatenatedSamples) {
  const std::vector<std::uint64_t> left = {120, 45, 3000, 45, 7};
  const std::vector<std::uint64_t> right = {9000, 1, 45, 512};
  obs::Histogram a;
  for (const std::uint64_t v : left) a.add(v);
  obs::Histogram b;
  for (const std::uint64_t v : right) b.add(v);
  a.merge(b);

  obs::Histogram concat;
  for (const std::uint64_t v : left) concat.add(v);
  for (const std::uint64_t v : right) concat.add(v);

  // The merged multiset is exactly the concatenation: every statistic and
  // the JSON export agree with feeding the samples to one histogram.
  EXPECT_EQ(a.count(), concat.count());
  EXPECT_EQ(a.sum(), concat.sum());
  EXPECT_EQ(a.min(), concat.min());
  EXPECT_EQ(a.max(), concat.max());
  for (const int p : {1, 25, 50, 75, 90, 99, 100}) {
    EXPECT_EQ(a.percentile(p), concat.percentile(p)) << "p" << p;
  }
  const std::vector<obs::Histogram::Bucket> ab = a.buckets();
  const std::vector<obs::Histogram::Bucket> cb = concat.buckets();
  ASSERT_EQ(ab.size(), cb.size());
  for (std::size_t i = 0; i < ab.size(); ++i) {
    EXPECT_EQ(ab[i].upper, cb[i].upper);
    EXPECT_EQ(ab[i].count, cb[i].count);
  }
  const auto export_json = [](const obs::Histogram& h) {
    obs::JsonWriter w;
    w.begin_object();
    h.export_fields(w, "lat");
    w.end_object();
    return w.str();
  };
  EXPECT_EQ(export_json(a), export_json(concat));
  // b is untouched by the merge.
  EXPECT_EQ(b.count(), right.size());
}

TEST(Histogram, MergeWithEmptyIsIdentityBothWays) {
  obs::Histogram h;
  for (const std::uint64_t v : {10U, 20U, 30U}) h.add(v);
  obs::Histogram empty;
  h.merge(empty);  // merging in an empty histogram changes nothing
  EXPECT_EQ(h.count(), 3U);
  EXPECT_EQ(h.sum(), 60U);
  empty.merge(h);  // merging into an empty histogram copies the samples
  EXPECT_EQ(empty.count(), 3U);
  EXPECT_EQ(empty.sum(), 60U);
  EXPECT_EQ(empty.percentile(50), 20U);
  obs::Histogram e1;
  obs::Histogram e2;
  e1.merge(e2);
  EXPECT_TRUE(e1.empty());
}

// ---------------------------------------------------------------------------
// Trace sessions
// ---------------------------------------------------------------------------

TEST(TraceSession, DisabledByDefaultAndEnabledInScope) {
  EXPECT_FALSE(obs::enabled());
  obs::emit("nobody", obs::QueryTrace{});  // must be a harmless no-op
  {
    obs::TraceSession session;
    EXPECT_TRUE(obs::enabled());
    obs::QueryTrace t;
    t.query_index = 3;
    t[TraceCounter::kNodesVisited] = 11;
    obs::emit("alg", t);
    const obs::TraceReport report = session.report();
    ASSERT_EQ(report.algorithms.size(), 1U);
    EXPECT_EQ(report.algorithms[0].algorithm, "alg");
    ASSERT_EQ(report.algorithms[0].queries.size(), 1U);
    EXPECT_EQ(report.algorithms[0].queries[0][TraceCounter::kNodesVisited], 11U);
  }
  EXPECT_FALSE(obs::enabled());
}

TEST(TraceSession, NestedSessionThrows) {
  obs::TraceSession outer;
  EXPECT_THROW(obs::TraceSession inner, InternalError);
}

TEST(TraceCollector, QueriesSortedByIndexAndAlgorithmsInFirstEmissionOrder) {
  obs::TraceCollector collector;
  obs::QueryTrace t;
  t.query_index = 2;
  collector.record("b", t);
  t.query_index = 0;
  collector.record("a", t);
  t.query_index = 1;
  collector.record("b", t);
  const obs::TraceReport report = collector.report();
  ASSERT_EQ(report.algorithms.size(), 2U);
  EXPECT_EQ(report.algorithms[0].algorithm, "b");  // first emission wins
  EXPECT_EQ(report.algorithms[1].algorithm, "a");
  ASSERT_EQ(report.algorithms[0].queries.size(), 2U);
  EXPECT_EQ(report.algorithms[0].queries[0].query_index, 1U);
  EXPECT_EQ(report.algorithms[0].queries[1].query_index, 2U);
  EXPECT_NE(report.find("a"), nullptr);
  EXPECT_EQ(report.find("zzz"), nullptr);
}

// ---------------------------------------------------------------------------
// JSON plumbing
// ---------------------------------------------------------------------------

TEST(Json, WriterProducesStableDocument) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("name", "x\"y");
  w.field("count", std::uint64_t{42});
  w.field("ratio", 0.5);
  w.begin_array("items");
  w.value(std::uint64_t{1});
  w.value(std::uint64_t{2});
  w.end_array();
  w.end_object();
  const std::string doc = w.str();
  EXPECT_NE(doc.find("\"name\": \"x\\\"y\""), std::string::npos);
  EXPECT_NE(doc.find("\"count\": 42"), std::string::npos);
  const obs::FlatJson parsed = obs::parse_flat_json(R"({"a": 1.5, "b": "s", "c": true})");
  EXPECT_DOUBLE_EQ(parsed.numbers.at("a"), 1.5);
  EXPECT_DOUBLE_EQ(parsed.numbers.at("c"), 1.0);
  EXPECT_EQ(parsed.strings.at("b"), "s");
}

TEST(Json, FlatParserRejectsNesting) {
  EXPECT_THROW(obs::parse_flat_json(R"({"a": {"b": 1}})"), CorruptInput);
  EXPECT_THROW(obs::parse_flat_json(R"({"a": [1, 2]})"), CorruptInput);
  EXPECT_THROW(obs::parse_flat_json("[1]"), CorruptInput);
  EXPECT_THROW(obs::parse_flat_json(R"({"a": 1,})"), CorruptInput);
}

TEST(Json, FormatDoubleRoundTrips) {
  for (const double v : {0.0, 1.0, -1.5, 0.1, 1e-9, 12345.6789, 2.2250738585072014e-308}) {
    const std::string s = obs::format_double(v);
    EXPECT_EQ(std::stod(s), v) << s;
  }
}

// ---------------------------------------------------------------------------
// Every algorithm emits; exports are byte-identical across same-seed runs
// ---------------------------------------------------------------------------

struct AllAlgorithmsRun {
  std::string trace_json;
  std::string trace_csv;
};

AllAlgorithmsRun run_all_algorithms() {
  const PointSet data = test::small_clustered(4, 600, /*seed=*/99);
  const PointSet queries = test::random_queries(4, 5, /*seed=*/3);
  const sstree::SSTree tree = sstree::build_kmeans(data, 16).tree;
  knn::GpuKnnOptions opts;
  opts.k = 4;
  knn::TaskParallelSsOptions tp;
  tp.k = 4;

  obs::TraceSession session;
  (void)knn::psb_batch(tree, queries, opts);
  (void)knn::bnb_batch(tree, queries, opts);
  (void)knn::best_first_gpu_batch(tree, queries, opts);
  (void)knn::best_first_batch(tree, queries, opts.k);
  (void)knn::restart_batch(tree, queries, opts);
  (void)knn::skip_pointer_batch(tree, queries, opts);
  (void)knn::brute_force_batch(data, queries, opts);
  (void)knn::task_parallel_sstree_knn(tree, queries, tp);

  const obs::TraceReport report = session.report();
  AllAlgorithmsRun out;
  out.trace_json = obs::trace_to_json(report);
  out.trace_csv = obs::trace_to_csv(report);

  // Every algorithm registered itself, once per query.
  const std::vector<std::string> expected = {
      "psb",      "branch_and_bound", "best_first",  "best_first_host",
      "stackless_restart", "stackless_skip", "brute_force", "task_parallel_sstree"};
  EXPECT_EQ(report.algorithms.size(), expected.size());
  for (const std::string& name : expected) {
    const obs::AlgorithmTrace* trace = report.find(name);
    if (trace == nullptr) {
      ADD_FAILURE() << "no trace emitted for " << name;
      continue;
    }
    EXPECT_EQ(trace->queries.size(), queries.size()) << name;
    for (std::size_t q = 0; q < trace->queries.size(); ++q) {
      EXPECT_EQ(trace->queries[q].query_index, q) << name;
      EXPECT_GT(trace->queries[q][TraceCounter::kPointsExamined], 0U) << name;
    }
    // Device counters flow through for the simulated-GPU algorithms (the
    // host-side best-first has none).
    if (name != "best_first_host") {
      EXPECT_GT(trace->totals()[TraceCounter::kWarpInstructions], 0U) << name;
    }
  }
  // Traversal-shape counters land where the algorithm semantics say they do.
  EXPECT_GT(report.find("psb")->totals()[TraceCounter::kBacktracks], 0U);
  EXPECT_GT(report.find("psb")->totals()[TraceCounter::kRestarts], 0U);
  EXPECT_GT(report.find("stackless_restart")->totals()[TraceCounter::kRestarts], 0U);
  EXPECT_GT(report.find("best_first")->totals()[TraceCounter::kHeapPushes], 0U);
  EXPECT_EQ(report.find("brute_force")->totals()[TraceCounter::kBacktracks], 0U);
  return out;
}

TEST(TraceExport, ByteIdenticalAcrossSameSeedRuns) {
  const AllAlgorithmsRun first = run_all_algorithms();
  const AllAlgorithmsRun second = run_all_algorithms();
  EXPECT_EQ(first.trace_json, second.trace_json);
  EXPECT_EQ(first.trace_csv, second.trace_csv);
  EXPECT_NE(first.trace_json.find("\"schema\": \"psb.trace.v1\""), std::string::npos);
  // The export parses back as JSON-with-nesting is rejected by the flat
  // parser — sanity-check shape via the CSV header instead.
  EXPECT_EQ(first.trace_csv.rfind("algorithm,query_index,nodes_visited", 0), 0U);
}

TEST(TraceExport, AlgorithmsEmitNothingWhenDisabled) {
  ASSERT_FALSE(obs::enabled());
  const PointSet data = test::small_clustered(4, 300, /*seed=*/5);
  const PointSet queries = test::random_queries(4, 3, /*seed=*/6);
  const sstree::SSTree tree = sstree::build_kmeans(data, 16).tree;
  knn::GpuKnnOptions opts;
  opts.k = 2;
  (void)knn::psb_batch(tree, queries, opts);  // must not touch any collector
  obs::TraceSession session;
  EXPECT_TRUE(session.report().empty());
}

TEST(RegistryExport, SnapshotJsonOmitsTimersByDefault) {
  obs::Registry reg;
  reg.add("a.count", 2);
  reg.add_timer_seconds("wall", 1.25);
  const std::string without = obs::registry_to_json(reg.snapshot());
  EXPECT_NE(without.find("\"a.count\": 2"), std::string::npos);
  EXPECT_EQ(without.find("wall"), std::string::npos);
  const std::string with = obs::registry_to_json(reg.snapshot(), /*include_timers=*/true);
  EXPECT_NE(with.find("wall"), std::string::npos);
}

}  // namespace
}  // namespace psb
