// Metamorphic properties of the query-reordering scheduler:
//
//  1. With private resident windows (warp_queries <= 1) Hilbert-reordering a
//     batch is *unobservable*: results AND exported traces (JSON and CSV) are
//     byte-identical to the unsorted run — the engine re-indexes everything
//     back to the caller's order and the trace collector keys on query_index.
//  2. Sharing a window across a warp cohort can only remove traffic, never
//     add it: each cohort member starts from a superset of the residency its
//     private window would have built, and the traversal itself is identical.
//  3. The structure counters (nodes visited, heap inserts, ...) are invariant
//     under both reordering and window sharing.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/noaa_synth.hpp"
#include "data/synthetic.hpp"
#include "engine/batch_engine.hpp"
#include "obs/export.hpp"
#include "sstree/builders.hpp"
#include "test_util.hpp"

namespace psb {
namespace {

struct Workload {
  PointSet data;
  PointSet queries;
  sstree::SSTree tree;  ///< borrows `data`; built after `data` reaches its home

  Workload(PointSet d, PointSet q, std::size_t degree)
      : data(std::move(d)),
        queries(std::move(q)),
        tree(sstree::build_kmeans(data, degree).tree) {}
};

Workload noaa_workload() {
  data::NoaaSpec spec;
  spec.stations = 100;
  spec.readings_per_station = 30;
  spec.seed = 1973;
  PointSet data = data::make_noaa_like(spec);
  PointSet queries = data::sample_queries(data, 96, /*jitter=*/0.5, /*seed=*/13);
  return Workload(std::move(data), std::move(queries), 32);
}

engine::BatchEngineOptions base_options(engine::Algorithm algo) {
  engine::BatchEngineOptions opts;
  opts.algorithm = algo;
  opts.gpu.k = 8;
  return opts;
}

void expect_identical_results(const knn::BatchResult& a, const knn::BatchResult& b,
                              const std::string& label) {
  ASSERT_EQ(a.queries.size(), b.queries.size()) << label;
  for (std::size_t q = 0; q < a.queries.size(); ++q) {
    ASSERT_EQ(a.queries[q].neighbors.size(), b.queries[q].neighbors.size())
        << label << " query " << q;
    for (std::size_t i = 0; i < a.queries[q].neighbors.size(); ++i) {
      EXPECT_EQ(a.queries[q].neighbors[i].id, b.queries[q].neighbors[i].id)
          << label << " query " << q << " rank " << i;
      EXPECT_EQ(a.queries[q].neighbors[i].dist, b.queries[q].neighbors[i].dist)
          << label << " query " << q << " rank " << i;
    }
  }
}

TEST(ReorderMetamorphic, PrivateWindowReorderingIsByteInvisible) {
  const Workload w = noaa_workload();
  for (const engine::Algorithm algo :
       {engine::Algorithm::kPsb, engine::Algorithm::kBranchAndBound,
        engine::Algorithm::kStacklessSkip, engine::Algorithm::kTaskParallel}) {
    engine::BatchEngineOptions unsorted = base_options(algo);
    unsorted.use_snapshot = true;
    unsorted.warp_queries = 1;  // private windows: nothing couples queries

    engine::BatchEngineOptions sorted = unsorted;
    sorted.reorder_queries = true;

    const engine::BatchEngine::TracedRun a =
        engine::BatchEngine(w.tree, unsorted).run_traced(w.queries);
    const engine::BatchEngine::TracedRun b =
        engine::BatchEngine(w.tree, sorted).run_traced(w.queries);

    const std::string label(engine::algorithm_name(algo));
    expect_identical_results(a.result, b.result, label);
    EXPECT_EQ(obs::trace_to_json(a.trace), obs::trace_to_json(b.trace)) << label;
    EXPECT_EQ(obs::trace_to_csv(a.trace), obs::trace_to_csv(b.trace)) << label;
  }
}

TEST(ReorderMetamorphic, PointerModeReorderingIsByteInvisible) {
  // Even without the snapshot, reordering must be unobservable (queries are
  // fully independent in pointer mode).
  const Workload w = noaa_workload();
  engine::BatchEngineOptions unsorted = base_options(engine::Algorithm::kPsb);
  engine::BatchEngineOptions sorted = unsorted;
  sorted.reorder_queries = true;

  const engine::BatchEngine::TracedRun a =
      engine::BatchEngine(w.tree, unsorted).run_traced(w.queries);
  const engine::BatchEngine::TracedRun b =
      engine::BatchEngine(w.tree, sorted).run_traced(w.queries);
  expect_identical_results(a.result, b.result, "psb/pointer");
  EXPECT_EQ(obs::trace_to_json(a.trace), obs::trace_to_json(b.trace));
  EXPECT_EQ(obs::trace_to_csv(a.trace), obs::trace_to_csv(b.trace));
}

TEST(ReorderMetamorphic, CohortSharingOnlyRemovesTraffic) {
  const Workload w = noaa_workload();
  engine::BatchEngineOptions priv = base_options(engine::Algorithm::kPsb);
  priv.use_snapshot = true;
  priv.reorder_queries = true;
  priv.warp_queries = 1;

  engine::BatchEngineOptions shared = priv;
  shared.warp_queries = 32;

  const knn::BatchResult a = engine::BatchEngine(w.tree, priv).run(w.queries);
  const knn::BatchResult b = engine::BatchEngine(w.tree, shared).run(w.queries);

  expect_identical_results(a, b, "psb/shared-window");
  EXPECT_EQ(b.stats.nodes_visited, a.stats.nodes_visited);
  EXPECT_EQ(b.stats.heap_inserts, a.stats.heap_inserts);
  EXPECT_EQ(b.metrics.warp_instructions, a.metrics.warp_instructions);
  // Sharing starts every query from a superset of its private residency:
  // strictly fewer (never more) new segments get charged.
  EXPECT_LE(b.metrics.total_bytes(), a.metrics.total_bytes());
  EXPECT_LT(b.metrics.total_bytes(), a.metrics.total_bytes())
      << "a 32-query cohort on clustered data should share at least one segment";
}

TEST(ReorderMetamorphic, ThreadCountInvariantWithCohorts) {
  const Workload w = noaa_workload();
  engine::BatchEngineOptions opts = base_options(engine::Algorithm::kPsb);
  opts.use_snapshot = true;
  opts.reorder_queries = true;
  opts.warp_queries = 8;

  engine::BatchEngineOptions threaded = opts;
  threaded.num_threads = 4;

  const engine::BatchEngine::TracedRun a =
      engine::BatchEngine(w.tree, opts).run_traced(w.queries);
  const engine::BatchEngine::TracedRun b =
      engine::BatchEngine(w.tree, threaded).run_traced(w.queries);
  expect_identical_results(a.result, b.result, "psb/threads");
  EXPECT_EQ(obs::trace_to_json(a.trace), obs::trace_to_json(b.trace));
  EXPECT_EQ(a.result.metrics.total_bytes(), b.result.metrics.total_bytes());
}

}  // namespace
}  // namespace psb
