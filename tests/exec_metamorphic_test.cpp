// The executor-schedule bit-identity contract: serving a batch through the
// resumable executors (ExecSchedule::kExecutor, the default) must reproduce
// the legacy run-to-completion loops bit-for-bit — same neighbors, statuses,
// traversal stats, device Metrics, cost-model timing, and per-query traces —
// across every algorithm, the offline / sharded / streamed paths, snapshot
// cohorts, host thread counts and query reordering. The only observable the
// executor path may add is the exec overlap namespace itself.
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "engine/batch_engine.hpp"
#include "obs/registry.hpp"
#include "serve/arrivals.hpp"
#include "serve/streaming_engine.hpp"
#include "shard/sharded_engine.hpp"
#include "sstree/builders.hpp"
#include "test_util.hpp"

namespace psb {
namespace {

using engine::Algorithm;
using engine::BatchEngine;
using engine::BatchEngineOptions;
using engine::ExecSchedule;

constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kPsb,           Algorithm::kBestFirst,
    Algorithm::kBranchAndBound, Algorithm::kStacklessRestart,
    Algorithm::kStacklessSkip,  Algorithm::kBruteForce,
    Algorithm::kTaskParallel,   Algorithm::kImplicitStackless,
};

struct Workload {
  PointSet data;
  PointSet queries;
  sstree::BuildOutput built;

  Workload() : data(test::small_clustered(4, 700, 2016)),
               queries(test::random_queries(4, 12, 17)),
               built(sstree::build_kmeans(data, 16, {})) {}
};

void expect_batch_identical(const knn::BatchResult& exec, const knn::BatchResult& legacy,
                            const std::string& label) {
  ASSERT_EQ(exec.queries.size(), legacy.queries.size()) << label;
  for (std::size_t q = 0; q < exec.queries.size(); ++q) {
    const knn::QueryResult& a = exec.queries[q];
    const knn::QueryResult& b = legacy.queries[q];
    const std::string at = label + " query " + std::to_string(q);
    ASSERT_EQ(a.neighbors.size(), b.neighbors.size()) << at;
    for (std::size_t i = 0; i < a.neighbors.size(); ++i) {
      EXPECT_EQ(a.neighbors[i].id, b.neighbors[i].id) << at << " rank " << i;
      EXPECT_EQ(a.neighbors[i].dist, b.neighbors[i].dist) << at << " rank " << i;
    }
    EXPECT_EQ(a.status, b.status) << at;
    EXPECT_EQ(a.stats.nodes_visited, b.stats.nodes_visited) << at;
    EXPECT_EQ(a.stats.leaves_visited, b.stats.leaves_visited) << at;
    EXPECT_EQ(a.stats.points_examined, b.stats.points_examined) << at;
    EXPECT_EQ(a.stats.backtracks, b.stats.backtracks) << at;
    EXPECT_EQ(a.stats.leaf_scans, b.stats.leaf_scans) << at;
    EXPECT_EQ(a.stats.restarts, b.stats.restarts) << at;
    EXPECT_EQ(a.stats.heap_inserts, b.stats.heap_inserts) << at;
    EXPECT_EQ(a.stats.heap_pushes, b.stats.heap_pushes) << at;
  }
  // Aggregated device counters and the cost-model timing derived from them
  // must be bit-identical (the executors perform the exact legacy charge
  // sequence, so even the double-precision timing cannot drift).
  EXPECT_EQ(exec.metrics.warp_instructions, legacy.metrics.warp_instructions) << label;
  EXPECT_EQ(exec.metrics.active_lane_slots, legacy.metrics.active_lane_slots) << label;
  EXPECT_EQ(exec.metrics.serial_ops, legacy.metrics.serial_ops) << label;
  EXPECT_EQ(exec.metrics.divergent_steps, legacy.metrics.divergent_steps) << label;
  EXPECT_EQ(exec.metrics.bytes_coalesced, legacy.metrics.bytes_coalesced) << label;
  EXPECT_EQ(exec.metrics.bytes_random, legacy.metrics.bytes_random) << label;
  EXPECT_EQ(exec.metrics.bytes_cached, legacy.metrics.bytes_cached) << label;
  EXPECT_EQ(exec.metrics.node_fetches, legacy.metrics.node_fetches) << label;
  EXPECT_EQ(exec.metrics.fetches_random, legacy.metrics.fetches_random) << label;
  EXPECT_EQ(exec.metrics.fetches_cached, legacy.metrics.fetches_cached) << label;
  EXPECT_EQ(exec.timing.wall_ms, legacy.timing.wall_ms) << label;
  EXPECT_EQ(exec.timing.avg_query_ms, legacy.timing.avg_query_ms) << label;
  // The overlap totals are the one permitted divergence: populated by the
  // executor schedule, all-zero on the legacy path.
  EXPECT_EQ(legacy.exec.steps, 0u) << label;
}

void expect_traces_identical(const obs::TraceReport& exec, const obs::TraceReport& legacy,
                             const std::string& label) {
  ASSERT_EQ(exec.algorithms.size(), legacy.algorithms.size()) << label;
  for (std::size_t a = 0; a < exec.algorithms.size(); ++a) {
    const obs::AlgorithmTrace& ta = exec.algorithms[a];
    const obs::AlgorithmTrace& tb = legacy.algorithms[a];
    EXPECT_EQ(ta.algorithm, tb.algorithm) << label;
    ASSERT_EQ(ta.queries.size(), tb.queries.size()) << label << " " << ta.algorithm;
    for (std::size_t q = 0; q < ta.queries.size(); ++q) {
      EXPECT_EQ(ta.queries[q].query_index, tb.queries[q].query_index);
      for (std::size_t c = 0; c < obs::kNumTraceCounters; ++c) {
        EXPECT_EQ(ta.queries[q].counters[c], tb.queries[q].counters[c])
            << label << " " << ta.algorithm << " query " << q << " counter "
            << obs::trace_counter_name(static_cast<obs::TraceCounter>(c));
      }
    }
  }
}

void run_both_and_compare(const sstree::SSTree& tree, const PointSet& queries,
                          BatchEngineOptions opts, const std::string& label) {
  opts.exec_schedule = ExecSchedule::kExecutor;
  const BatchEngine exec_eng(tree, opts);
  const BatchEngine::TracedRun exec_run = exec_eng.run_traced(queries);

  opts.exec_schedule = ExecSchedule::kLegacy;
  const BatchEngine legacy_eng(tree, opts);
  const BatchEngine::TracedRun legacy_run = legacy_eng.run_traced(queries);

  expect_batch_identical(exec_run.result, legacy_run.result, label);
  expect_traces_identical(exec_run.trace, legacy_run.trace, label);
}

TEST(ExecMetamorphicTest, ExecutorEqualsLegacyEveryAlgorithm) {
  const Workload w;
  for (const Algorithm a : kAllAlgorithms) {
    BatchEngineOptions opts;
    opts.algorithm = a;
    opts.gpu.k = 6;
    opts.num_threads = 1;
    run_both_and_compare(w.built.tree, w.queries, opts,
                         std::string(engine::algorithm_name(a)) + " base");
  }
}

TEST(ExecMetamorphicTest, ExecutorEqualsLegacySnapshotCohorts) {
  const Workload w;
  for (const Algorithm a : kAllAlgorithms) {
    BatchEngineOptions opts;
    opts.algorithm = a;
    opts.gpu.k = 6;
    opts.use_snapshot = true;
    opts.warp_queries = 4;
    opts.num_threads = 1;
    run_both_and_compare(w.built.tree, w.queries, opts,
                         std::string(engine::algorithm_name(a)) + " snapshot");
  }
}

TEST(ExecMetamorphicTest, ExecutorEqualsLegacyUnderQueryReorder) {
  const Workload w;
  for (const Algorithm a : {Algorithm::kStacklessSkip, Algorithm::kImplicitStackless,
                            Algorithm::kPsb}) {
    BatchEngineOptions opts;
    opts.algorithm = a;
    opts.gpu.k = 6;
    opts.use_snapshot = true;
    opts.reorder_queries = true;
    opts.warp_queries = 4;
    opts.num_threads = 1;
    run_both_and_compare(w.built.tree, w.queries, opts,
                         std::string(engine::algorithm_name(a)) + " reorder");
  }
}

TEST(ExecMetamorphicTest, ExecutorEqualsLegacyMultiThreaded) {
  const Workload w;
  for (const Algorithm a : {Algorithm::kStacklessSkip, Algorithm::kBestFirst}) {
    BatchEngineOptions opts;
    opts.algorithm = a;
    opts.gpu.k = 6;
    opts.use_snapshot = true;
    opts.warp_queries = 4;
    opts.num_threads = 4;
    run_both_and_compare(w.built.tree, w.queries, opts,
                         std::string(engine::algorithm_name(a)) + " threads=4");
  }
}

TEST(ExecMetamorphicTest, ShardedExecutorEqualsLegacy) {
  const Workload w;
  for (const Algorithm a : {Algorithm::kStacklessSkip, Algorithm::kImplicitStackless,
                            Algorithm::kBranchAndBound}) {
    shard::ShardedEngineOptions sopts;
    sopts.num_shards = 4;
    sopts.degree = 16;
    sopts.engine.algorithm = a;
    sopts.engine.gpu.k = 6;
    sopts.engine.use_snapshot = true;
    sopts.engine.num_threads = 1;

    sopts.engine.exec_schedule = ExecSchedule::kExecutor;
    shard::ShardedEngine exec_eng(w.data, sopts);
    const knn::BatchResult exec_res = exec_eng.run(w.queries);

    sopts.engine.exec_schedule = ExecSchedule::kLegacy;
    shard::ShardedEngine legacy_eng(w.data, sopts);
    const knn::BatchResult legacy_res = legacy_eng.run(w.queries);

    expect_batch_identical(exec_res, legacy_res,
                           std::string(engine::algorithm_name(a)) + " sharded");
    EXPECT_GT(exec_res.exec.steps, 0u) << engine::algorithm_name(a);
  }
}

TEST(ExecMetamorphicTest, StreamedExecutorEqualsLegacy) {
  const Workload w;
  serve::ArrivalSpec aspec;
  aspec.rate_qps = 2500.0;
  aspec.duration_s = 0.05;
  aspec.seed = 77;
  const serve::ArrivalStream stream = serve::generate_arrivals(w.data, aspec);
  ASSERT_GT(stream.size(), 0u);

  serve::StreamingOptions so;
  so.engine.algorithm = Algorithm::kStacklessSkip;
  so.engine.gpu.k = 6;
  so.engine.use_snapshot = true;
  so.engine.num_threads = 1;
  so.buffer_capacity = 4;
  so.engine.warp_queries = 4;
  so.admission_queue_bound = 0;  // nothing shed: every arrival is comparable
  so.cell_bits = 2;

  so.engine.exec_schedule = ExecSchedule::kExecutor;
  serve::StreamingEngine exec_eng(w.built.tree, so);
  const serve::StreamingReport exec_rep = exec_eng.run(stream);

  so.engine.exec_schedule = ExecSchedule::kLegacy;
  serve::StreamingEngine legacy_eng(w.built.tree, so);
  const serve::StreamingReport legacy_rep = legacy_eng.run(stream);

  // The virtual-clock schedule is a pure function of the backend's
  // cost-model timing, which the executor path reproduces bit-for-bit — so
  // every latency, flush assignment and counter must agree exactly.
  ASSERT_EQ(exec_rep.queries.size(), legacy_rep.queries.size());
  for (std::size_t i = 0; i < exec_rep.queries.size(); ++i) {
    const serve::StreamedQuery& a = exec_rep.queries[i];
    const serve::StreamedQuery& b = legacy_rep.queries[i];
    ASSERT_EQ(a.neighbors.size(), b.neighbors.size()) << "arrival " << i;
    for (std::size_t r = 0; r < a.neighbors.size(); ++r) {
      EXPECT_EQ(a.neighbors[r].id, b.neighbors[r].id) << "arrival " << i;
      EXPECT_EQ(a.neighbors[r].dist, b.neighbors[r].dist) << "arrival " << i;
    }
    EXPECT_EQ(a.status, b.status) << "arrival " << i;
    EXPECT_EQ(a.latency_us, b.latency_us) << "arrival " << i;
    EXPECT_EQ(a.flush_id, b.flush_id) << "arrival " << i;
  }
  EXPECT_EQ(exec_rep.flushes, legacy_rep.flushes);
  EXPECT_EQ(exec_rep.span_us, legacy_rep.span_us);
  EXPECT_EQ(exec_rep.accessed_bytes, legacy_rep.accessed_bytes);
  EXPECT_EQ(exec_rep.deadline_misses, legacy_rep.deadline_misses);
  // The streamed path rides the executor schedule by default and surfaces
  // its overlap totals; the legacy run reports none.
  EXPECT_GT(exec_rep.exec.steps, 0u);
  EXPECT_EQ(legacy_rep.exec.steps, 0u);
}

TEST(ExecMetamorphicTest, RegistryDiffIsOnlyExecNamespace) {
  const Workload w;
  BatchEngineOptions opts;
  opts.algorithm = Algorithm::kStacklessSkip;
  opts.gpu.k = 6;
  opts.use_snapshot = true;
  opts.warp_queries = 4;
  opts.num_threads = 1;

  const auto counters_for = [&](ExecSchedule s) {
    opts.exec_schedule = s;
    obs::Registry::global().reset();
    const BatchEngine eng(w.built.tree, opts);
    (void)eng.run(w.queries);
    return obs::Registry::global().snapshot();
  };
  const obs::Registry::Snapshot legacy = counters_for(ExecSchedule::kLegacy);
  const obs::Registry::Snapshot exec = counters_for(ExecSchedule::kExecutor);

  const auto value = [](const obs::Registry::Snapshot& s, std::string_view name) {
    for (const auto& [n, v] : s.counters) {
      if (n == name) return v;
    }
    return std::uint64_t{0};
  };
  // Every legacy counter survives unchanged; everything the executor path
  // adds lives under engine.exec.* (the resume-fault counter exists in both
  // schedules and stays zero without an injection scope).
  for (const auto& [name, v] : legacy.counters) {
    EXPECT_EQ(value(exec, name), v) << name;
  }
  for (const auto& [name, v] : exec.counters) {
    if (value(legacy, name) != v) {
      EXPECT_TRUE(std::string_view(name).substr(0, 12) == "engine.exec.")
          << name << " changed between schedules";
    }
  }
  EXPECT_GT(value(exec, "engine.exec.steps"), 0u);
}

}  // namespace
}  // namespace psb
