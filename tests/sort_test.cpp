// Tests for the instrumented radix sort used by Hilbert bottom-up build.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "simt/sort.hpp"

namespace psb::simt {
namespace {

std::vector<std::uint64_t> random_keys(std::size_t n, std::size_t words, std::uint64_t seed,
                                       std::uint64_t mask = ~0ULL) {
  Rng rng(seed);
  std::vector<std::uint64_t> keys(n * words);
  for (auto& k : keys) k = rng.next_u64() & mask;
  return keys;
}

bool is_sorted_order(std::span<const std::uint64_t> keys, std::size_t words,
                     std::span<const PointId> order) {
  for (std::size_t i = 1; i < order.size(); ++i) {
    std::span<const std::uint64_t> a{keys.data() + order[i - 1] * words, words};
    std::span<const std::uint64_t> b{keys.data() + order[i] * words, words};
    if (compare_keys(a, b) > 0) return false;
  }
  return true;
}

TEST(RadixSort, SingleWordMatchesStdSort) {
  const auto keys = random_keys(1000, 1, 42);
  const auto order = radix_sort_order(keys, nullptr);
  ASSERT_EQ(order.size(), 1000u);
  EXPECT_TRUE(is_sorted_order(keys, 1, order));
  // Permutation check.
  std::vector<PointId> sorted_ids(order.begin(), order.end());
  std::sort(sorted_ids.begin(), sorted_ids.end());
  for (std::size_t i = 0; i < sorted_ids.size(); ++i) EXPECT_EQ(sorted_ids[i], i);
}

TEST(RadixSort, MultiWordLexicographic) {
  for (const std::size_t words : {2u, 3u, 5u}) {
    const auto keys = random_keys(500, words, 1000 + words);
    const auto order = radix_sort_order(keys, words, nullptr);
    EXPECT_TRUE(is_sorted_order(keys, words, order)) << words << " words";
  }
}

TEST(RadixSort, StableOnEqualKeys) {
  // All-equal keys: order must be the identity (stability).
  std::vector<std::uint64_t> keys(100, 7);
  const auto order = radix_sort_order(keys, 1, nullptr);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(RadixSort, SparseKeysWithTrivialPasses) {
  // Keys only in the low byte: the high-digit passes must be skipped without
  // corrupting the result.
  const auto keys = random_keys(300, 2, 5, 0xFFULL);
  const auto order = radix_sort_order(keys, 2, nullptr);
  EXPECT_TRUE(is_sorted_order(keys, 2, order));
}

TEST(RadixSort, EmptyAndSingle) {
  EXPECT_TRUE(radix_sort_order({}, 1, nullptr).empty());
  const std::vector<std::uint64_t> one{99};
  const auto order = radix_sort_order(one, 1, nullptr);
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], 0u);
}

TEST(RadixSort, ChargesCoalescedTraffic) {
  Metrics m;
  const auto keys = random_keys(128, 2, 77);
  radix_sort_order(keys, 2, &m);
  // 2 words -> 8 passes; each pass moves key bytes + 2 payload words.
  const std::uint64_t expected = 8ull * 128 * (16 + 8);
  EXPECT_EQ(m.bytes_coalesced, expected);
  EXPECT_EQ(m.bytes_random, 0u);
}

TEST(RadixSort, RejectsMalformedInput) {
  const std::vector<std::uint64_t> keys{1, 2, 3};
  EXPECT_THROW(radix_sort_order(keys, 2, nullptr), InvalidArgument);
  EXPECT_THROW(radix_sort_order(keys, 0, nullptr), InvalidArgument);
}

TEST(CompareKeys, Lexicographic) {
  const std::vector<std::uint64_t> a{1, 5};
  const std::vector<std::uint64_t> b{1, 7};
  const std::vector<std::uint64_t> c{2, 0};
  EXPECT_LT(compare_keys(a, b), 0);
  EXPECT_GT(compare_keys(c, b), 0);
  EXPECT_EQ(compare_keys(a, a), 0);
}

}  // namespace
}  // namespace psb::simt
