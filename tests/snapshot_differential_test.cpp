// Snapshot-vs-pointer differential sweep: every algorithm must return
// *bit-identical* neighbors when its node fetches are routed through the
// frozen traversal snapshot — the arena changes where bytes live and how they
// are charged, never which nodes are visited or which candidates win. Runs
// across a (k, dims, degree) grid on seeded uniform and NOAA-like data.
//
// The final test is the PR's acceptance criterion: on the NOAA-like workload
// the snapshot + Hilbert query reordering engine configuration must cut PSB's
// accessed global-memory bytes by >= 10% without regressing warp efficiency.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/noaa_synth.hpp"
#include "data/synthetic.hpp"
#include "engine/batch_engine.hpp"
#include "knn/best_first.hpp"
#include "knn/branch_and_bound.hpp"
#include "knn/brute_force.hpp"
#include "knn/psb.hpp"
#include "knn/stackless_baselines.hpp"
#include "knn/task_parallel_sstree.hpp"
#include "layout/snapshot.hpp"
#include "sstree/builders.hpp"
#include "test_util.hpp"

namespace psb {
namespace {

struct Config {
  std::size_t k;
  std::size_t dims;  // ignored for the NOAA dataset (fixed 4-D)
  std::size_t degree;
};

std::string config_name(const testing::TestParamInfo<Config>& info) {
  return "k" + std::to_string(info.param.k) + "d" + std::to_string(info.param.dims) +
         "deg" + std::to_string(info.param.degree);
}

void expect_identical(const std::vector<knn::QueryResult>& got,
                      const std::vector<knn::QueryResult>& want, const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t q = 0; q < got.size(); ++q) {
    ASSERT_EQ(got[q].neighbors.size(), want[q].neighbors.size()) << label << " query " << q;
    for (std::size_t i = 0; i < got[q].neighbors.size(); ++i) {
      EXPECT_EQ(got[q].neighbors[i].id, want[q].neighbors[i].id)
          << label << " query " << q << " rank " << i;
      EXPECT_EQ(got[q].neighbors[i].dist, want[q].neighbors[i].dist)
          << label << " query " << q << " rank " << i;
    }
  }
}

void run_snapshot_differential(const PointSet& data, const PointSet& queries, std::size_t k,
                               std::size_t degree, const std::string& dataset) {
  const sstree::SSTree tree = sstree::build_kmeans(data, degree).tree;
  tree.validate();
  const layout::TraversalSnapshot snap(tree);
  snap.validate();

  knn::GpuKnnOptions pointer;
  pointer.k = k;
  knn::GpuKnnOptions arena = pointer;
  arena.snapshot = &snap;

  using Runner = knn::BatchResult (*)(const sstree::SSTree&, const PointSet&,
                                      const knn::GpuKnnOptions&);
  const std::vector<std::pair<std::string, Runner>> tree_algos = {
      {"psb", &knn::psb_batch},
      {"branch_and_bound", &knn::bnb_batch},
      {"best_first", &knn::best_first_gpu_batch},
      {"stackless_restart", &knn::restart_batch},
      {"stackless_skip", &knn::skip_pointer_batch},
  };

  for (const auto& [name, run] : tree_algos) {
    const knn::BatchResult base = run(tree, queries, pointer);
    const knn::BatchResult snapped = run(tree, queries, arena);
    expect_identical(snapped.queries, base.queries, dataset + "/" + name);
    // Identical traversal: every structure counter must match exactly.
    EXPECT_EQ(snapped.stats.nodes_visited, base.stats.nodes_visited) << dataset << '/' << name;
    EXPECT_EQ(snapped.stats.leaves_visited, base.stats.leaves_visited) << dataset << '/' << name;
    EXPECT_EQ(snapped.stats.points_examined, base.stats.points_examined)
        << dataset << '/' << name;
    EXPECT_EQ(snapped.stats.heap_inserts, base.stats.heap_inserts) << dataset << '/' << name;
    // The accounting, not the work, changed: instruction-side counters agree.
    EXPECT_EQ(snapped.metrics.warp_instructions, base.metrics.warp_instructions)
        << dataset << '/' << name;
    EXPECT_EQ(snapped.metrics.active_lane_slots, base.metrics.active_lane_slots)
        << dataset << '/' << name;
  }

  // Brute force scans leaves instead of id-order chunks in snapshot mode;
  // neighbors are still identical thanks to the deterministic (dist, id) heap.
  {
    const knn::BatchResult base = knn::brute_force_batch(data, queries, pointer);
    const knn::BatchResult snapped = knn::brute_force_batch(tree.data(), queries, arena);
    expect_identical(snapped.queries, base.queries, dataset + "/brute_force");
  }

  // Task-parallel lanes charge through per-lane windows.
  {
    knn::TaskParallelSsOptions tp;
    tp.k = k;
    const knn::BatchResult base = knn::task_parallel_sstree_knn(tree, queries, tp);
    tp.snapshot = &snap;
    const knn::BatchResult snapped = knn::task_parallel_sstree_knn(tree, queries, tp);
    expect_identical(snapped.queries, base.queries, dataset + "/task_parallel");
    EXPECT_EQ(snapped.stats.nodes_visited, base.stats.nodes_visited) << dataset;
  }
}

class SnapshotSweep : public testing::TestWithParam<Config> {};

TEST_P(SnapshotSweep, UniformMatchesPointerPath) {
  const Config& cfg = GetParam();
  const PointSet data = data::make_uniform(cfg.dims, 2000, 1000.0, /*seed=*/20160805);
  const PointSet queries = test::random_queries(cfg.dims, 10, /*seed=*/43);
  run_snapshot_differential(data, queries, cfg.k, cfg.degree, "uniform");
}

TEST_P(SnapshotSweep, NoaaSynthMatchesPointerPath) {
  const Config& cfg = GetParam();
  data::NoaaSpec spec;
  spec.stations = 60;
  spec.readings_per_station = 30;
  spec.seed = 1973;
  const PointSet data = data::make_noaa_like(spec);
  const PointSet queries = data::sample_queries(data, 10, /*jitter=*/0.5, /*seed=*/9);
  run_snapshot_differential(data, queries, cfg.k, cfg.degree, "noaa");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SnapshotSweep,
    testing::Values(Config{1, 2, 16}, Config{8, 2, 128}, Config{8, 4, 16},
                    Config{8, 16, 128}, Config{32, 4, 128}, Config{32, 16, 16}),
    config_name);

TEST(SnapshotThroughEngine, EveryAlgorithmMatchesPointerEngine) {
  const PointSet data = test::small_clustered(4, 2500, /*seed=*/77);
  const PointSet queries = test::random_queries(4, 24, /*seed=*/78);
  const sstree::SSTree tree = sstree::build_kmeans(data, 32).tree;

  for (const engine::Algorithm algo :
       {engine::Algorithm::kPsb, engine::Algorithm::kBestFirst,
        engine::Algorithm::kBranchAndBound, engine::Algorithm::kStacklessRestart,
        engine::Algorithm::kStacklessSkip, engine::Algorithm::kBruteForce,
        engine::Algorithm::kTaskParallel}) {
    engine::BatchEngineOptions base;
    base.algorithm = algo;
    base.gpu.k = 8;
    engine::BatchEngineOptions snap = base;
    snap.use_snapshot = true;
    snap.reorder_queries = true;

    const knn::BatchResult a = engine::BatchEngine(tree, base).run(queries);
    const knn::BatchResult b = engine::BatchEngine(tree, snap).run(queries);
    expect_identical(b.queries, a.queries, std::string(engine::algorithm_name(algo)));
  }
}

// Acceptance: the coherence-optimized configuration (frozen arena + Hilbert
// query reordering + warp-cohort window sharing) must beat the pointer path
// by >= 10% accessed global-memory bytes on the NOAA-like workload for PSB,
// and must not regress warp efficiency.
TEST(SnapshotAcceptance, NoaaPsbCutsAccessedBytesTenPercent) {
  data::NoaaSpec spec;
  spec.stations = 150;
  spec.readings_per_station = 40;  // 6000 points, heavy spatial skew
  spec.seed = 1973;
  const PointSet data = data::make_noaa_like(spec);
  const PointSet queries = data::sample_queries(data, 256, /*jitter=*/0.5, /*seed=*/20160816);
  const sstree::SSTree tree = sstree::build_kmeans(data, 64).tree;

  engine::BatchEngineOptions pointer;
  pointer.algorithm = engine::Algorithm::kPsb;
  pointer.gpu.k = 16;

  engine::BatchEngineOptions coherent = pointer;
  coherent.use_snapshot = true;
  coherent.reorder_queries = true;
  coherent.warp_queries = 32;

  const knn::BatchResult base = engine::BatchEngine(tree, pointer).run(queries);
  const knn::BatchResult opt = engine::BatchEngine(tree, coherent).run(queries);

  const double base_bytes = static_cast<double>(base.metrics.total_bytes());
  const double opt_bytes = static_cast<double>(opt.metrics.total_bytes());
  ASSERT_GT(base_bytes, 0.0);
  EXPECT_LE(opt_bytes, 0.9 * base_bytes)
      << "accessed bytes: pointer=" << base_bytes << " snapshot+reorder=" << opt_bytes;
  EXPECT_GE(opt.metrics.warp_efficiency(), base.metrics.warp_efficiency() - 1e-12);
}

}  // namespace
}  // namespace psb
