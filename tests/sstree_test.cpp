// Tests for the SSTree container: finalize() derivations and the invariant
// validator itself (including that it *catches* broken trees).
#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"
#include "mbs/ritter.hpp"
#include "sstree/tree.hpp"
#include "test_util.hpp"

namespace psb::sstree {
namespace {

/// Hand-build a small two-level tree: points packed into leaves of
/// `leaf_size`, one root over all leaves. Returns the tree (not finalized).
SSTree manual_tree(const PointSet& points, std::size_t degree, std::size_t leaf_size) {
  SSTree tree(&points, degree);
  std::vector<NodeId> leaves;
  std::vector<PointId> ids(points.size());
  std::iota(ids.begin(), ids.end(), PointId{0});
  for (std::size_t base = 0; base < ids.size(); base += leaf_size) {
    const std::size_t count = std::min(leaf_size, ids.size() - base);
    const NodeId id = tree.add_node(0);
    Node& leaf = tree.node(id);
    leaf.points.assign(ids.begin() + base, ids.begin() + base + count);
    leaf.sphere = mbs::ritter_points(points, leaf.points);
    leaves.push_back(id);
  }
  const NodeId root = tree.add_node(1);
  tree.node(root).children = leaves;
  std::vector<Sphere> spheres;
  for (const NodeId l : leaves) spheres.push_back(tree.node(l).sphere);
  tree.node(root).sphere = mbs::ritter_spheres(spheres);
  tree.set_root(root);
  return tree;
}

TEST(SSTree, FinalizeDerivesLeafChainAndRanges) {
  const PointSet points = test::small_clustered(3, 64, 3);
  SSTree tree = manual_tree(points, 16, 8);
  tree.finalize();
  tree.validate();

  EXPECT_EQ(tree.leaves().size(), 8u);
  EXPECT_EQ(tree.height(), 2);
  EXPECT_EQ(tree.last_leaf_id(), 7u);

  // Chain is left-to-right.
  NodeId cur = tree.leftmost_leaf();
  std::uint32_t expect = 0;
  while (cur != kInvalidNode) {
    EXPECT_EQ(tree.node(cur).leaf_id, expect++);
    cur = tree.node(cur).right_sibling;
  }
  EXPECT_EQ(expect, 8u);

  // Root subtree covers all leaves.
  const Node& root = tree.node(tree.root());
  EXPECT_EQ(root.subtree_min_leaf, 0u);
  EXPECT_EQ(root.subtree_max_leaf, 7u);
  EXPECT_EQ(root.parent, kInvalidNode);
}

TEST(SSTree, SoAChildArraysMatchChildSpheres) {
  const PointSet points = test::small_clustered(4, 40, 5);
  SSTree tree = manual_tree(points, 10, 10);
  tree.finalize();
  const Node& root = tree.node(tree.root());
  const std::size_t c = root.children.size();
  for (std::size_t i = 0; i < c; ++i) {
    const Node& child = tree.node(root.children[i]);
    EXPECT_EQ(root.child_radii[i], child.sphere.radius);
    for (std::size_t t = 0; t < tree.dims(); ++t) {
      EXPECT_EQ(root.child_centers[t * c + i], child.sphere.center[t]);
    }
  }
}

TEST(SSTree, StagedLeafCoordsAreSoA) {
  const PointSet points = test::small_clustered(3, 12, 7);
  SSTree tree = manual_tree(points, 6, 6);
  tree.finalize();
  const Node& leaf = tree.node(tree.leftmost_leaf());
  const std::size_t n = leaf.points.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t t = 0; t < 3; ++t) {
      EXPECT_EQ(leaf.coords[t * n + i], points[leaf.points[i]][t]);
    }
  }
}

TEST(SSTree, NodeByteSizeFormula) {
  const PointSet points = test::small_clustered(4, 32, 9);
  SSTree tree = manual_tree(points, 8, 8);
  tree.finalize();
  const Node& leaf = tree.node(tree.leftmost_leaf());
  // header 32 + 8 points * (4 dims * 4B + 4B id)
  EXPECT_EQ(tree.node_byte_size(leaf), 32 + 8 * (16 + 4));
  const Node& root = tree.node(tree.root());
  // header 32 + 4 children * ((4+1)*4B sphere + 4B child id)
  EXPECT_EQ(tree.node_byte_size(root), 32 + 4 * (20 + 4));
}

TEST(SSTree, StatsUtilization) {
  const PointSet points = test::small_clustered(2, 32, 11);
  SSTree tree = manual_tree(points, 8, 8);  // 4 leaves, all full
  tree.finalize();
  const auto s = tree.stats();
  EXPECT_EQ(s.leaves, 4u);
  EXPECT_EQ(s.nodes, 5u);
  EXPECT_DOUBLE_EQ(s.leaf_utilization, 1.0);
  EXPECT_DOUBLE_EQ(s.internal_utilization, 0.5);  // 4 children of degree 8
  EXPECT_GT(s.total_bytes, 0u);
}

TEST(SSTree, ValidatorCatchesBrokenSphere) {
  const PointSet points = test::small_clustered(3, 64, 13);
  SSTree tree = manual_tree(points, 16, 8);
  tree.finalize();
  // Sabotage: shrink the root sphere so a child escapes.
  tree.node(tree.root()).sphere.radius *= 0.01F;
  EXPECT_THROW(tree.validate(), InternalError);
}

TEST(SSTree, ValidatorCatchesBrokenChain) {
  const PointSet points = test::small_clustered(3, 64, 17);
  SSTree tree = manual_tree(points, 16, 8);
  tree.finalize();
  tree.node(tree.leftmost_leaf()).right_sibling = kInvalidNode;  // cut the chain
  EXPECT_THROW(tree.validate(), InternalError);
}

TEST(SSTree, ValidatorCatchesDuplicatePoint) {
  const PointSet points = test::small_clustered(3, 64, 19);
  SSTree tree = manual_tree(points, 16, 8);
  tree.finalize();
  Node& leaf = tree.node(tree.leftmost_leaf());
  leaf.points[0] = leaf.points[1];  // duplicate a point id
  EXPECT_THROW(tree.validate(), InternalError);
}

TEST(SSTree, Preconditions) {
  const PointSet points = test::small_clustered(2, 8, 21);
  EXPECT_THROW(SSTree(nullptr, 8), InvalidArgument);
  EXPECT_THROW(SSTree(&points, 1), InvalidArgument);
  SSTree t(&points, 8);
  EXPECT_THROW(t.finalize(), InvalidArgument);  // no root set
}

TEST(SSTree, SingleLeafTree) {
  const PointSet points = test::small_clustered(2, 5, 23);
  SSTree tree(&points, 8);
  const NodeId leaf = tree.add_node(0);
  std::vector<PointId> ids(points.size());
  std::iota(ids.begin(), ids.end(), PointId{0});
  tree.node(leaf).points = ids;
  tree.node(leaf).sphere = mbs::ritter_points(points, ids);
  tree.set_root(leaf);
  tree.finalize();
  tree.validate();
  EXPECT_EQ(tree.height(), 1);
  EXPECT_EQ(tree.last_leaf_id(), 0u);
  EXPECT_EQ(tree.node(leaf).right_sibling, kInvalidNode);
}

}  // namespace
}  // namespace psb::sstree
