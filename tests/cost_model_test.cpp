// Tests for the cost model that converts simulator counters into the paper's
// timing metric — the contract in cost_model.hpp must hold monotonically.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "simt/cost_model.hpp"

namespace psb::simt {
namespace {

DeviceSpec spec() { return DeviceSpec{}; }

TEST(CostModel, LaunchOverheadIsTheFloor) {
  Metrics m;  // zero work
  const KernelTiming t = estimate(spec(), m, {1, 128});
  EXPECT_NEAR(t.wall_ms, spec().launch_overhead_ms, 1e-9);
  EXPECT_NEAR(t.avg_query_ms, spec().launch_overhead_ms, 1e-9);
}

TEST(CostModel, MoreBytesMoreTime) {
  Metrics a;
  a.bytes_coalesced = 1'000'000;
  Metrics b;
  b.bytes_coalesced = 10'000'000;
  const KernelConfig cfg{16, 128};
  EXPECT_LT(estimate(spec(), a, cfg).wall_ms, estimate(spec(), b, cfg).wall_ms);
}

TEST(CostModel, RandomBytesCostMoreThanCoalesced) {
  Metrics a;
  a.bytes_coalesced = 5'000'000;
  Metrics b;
  b.bytes_random = 5'000'000;
  const KernelConfig cfg{16, 128};
  EXPECT_LT(estimate(spec(), a, cfg).mem_ms, estimate(spec(), b, cfg).mem_ms);
}

TEST(CostModel, SharedMemoryFootprintLowersOccupancy) {
  Metrics small;
  small.shared_bytes = 1024;
  small.bytes_coalesced = 1'000'000;
  Metrics big = small;
  big.shared_bytes = 32 * 1024;  // 2 blocks per SM at 64 KB
  const KernelConfig cfg{240, 128};
  const KernelTiming ts = estimate(spec(), small, cfg);
  const KernelTiming tb = estimate(spec(), big, cfg);
  EXPECT_GT(ts.occupancy, tb.occupancy);
  EXPECT_LE(ts.wall_ms, tb.wall_ms);
  EXPECT_GT(tb.blocks_per_sm, 0);
}

TEST(CostModel, OccupancyKneeSlowsUnderfilledDevice) {
  Metrics m;
  m.bytes_coalesced = 10'000'000;
  m.shared_bytes = 60 * 1024;  // 1 block per SM
  const KernelTiming starved = estimate(spec(), m, {1, 32});
  const KernelTiming full = estimate(spec(), m, {240, 256});
  EXPECT_GT(starved.mem_ms, full.mem_ms);
}

TEST(CostModel, AvgQueryAmortizesOverBlocks) {
  Metrics m;
  m.bytes_coalesced = 100'000'000;
  const KernelTiming t = estimate(spec(), m, {100, 128});
  EXPECT_NEAR(t.avg_query_ms,
              spec().launch_overhead_ms + (t.wall_ms - spec().launch_overhead_ms) / 100, 1e-12);
}

TEST(CostModel, ComputeAndMemoryOverlap) {
  // wall = launch + max(compute, mem) + serial: a compute-light, memory-heavy
  // kernel is memory-bound.
  Metrics m;
  m.bytes_coalesced = 50'000'000;
  m.warp_instructions = 100;
  const KernelTiming t = estimate(spec(), m, {64, 128});
  EXPECT_NEAR(t.wall_ms, spec().launch_overhead_ms + t.mem_ms, 1e-9);
  EXPECT_LT(t.compute_ms, t.mem_ms);
}

TEST(CostModel, SerializedOpsAddLatency) {
  Metrics a;
  a.bytes_coalesced = 1'000'000;
  Metrics b = a;
  b.serial_ops = 10'000'000;
  const KernelConfig cfg{8, 128};
  EXPECT_GT(estimate(spec(), b, cfg).serial_ms, 0.0);
  EXPECT_GT(estimate(spec(), b, cfg).wall_ms, estimate(spec(), a, cfg).wall_ms);
}

TEST(CostModel, DivergenceCostsIssueSlots) {
  // Same active-lane work, but one kernel diverged (more warp instructions
  // for the same lane slots) -> more compute time.
  Metrics efficient;
  efficient.warp_instructions = 1'000'000;
  efficient.active_lane_slots = 32'000'000;
  Metrics divergent;
  divergent.warp_instructions = 8'000'000;
  divergent.active_lane_slots = 32'000'000;
  const KernelConfig cfg{64, 128};
  EXPECT_LT(estimate(spec(), efficient, cfg).compute_ms,
            estimate(spec(), divergent, cfg).compute_ms);
}

TEST(CostModel, DependentFetchesPayLatency) {
  Metrics a;
  a.bytes_coalesced = 1'000'000;
  Metrics b = a;
  b.bytes_random = 1'000'000;
  b.fetches_random = 1000;
  const KernelConfig cfg{10, 128};
  const KernelTiming ta = estimate(spec(), a, cfg);
  const KernelTiming tb = estimate(spec(), b, cfg);
  EXPECT_DOUBLE_EQ(ta.latency_ms, 0.0);
  EXPECT_GT(tb.latency_ms, 0.0);
  // 1000 fetches over 10 resident blocks at latency_random_us each.
  EXPECT_NEAR(tb.latency_ms, 1000 * spec().latency_random_us / 10 * 1e-3, 1e-12);
}

TEST(CostModel, CachedRefetchesAreCheaperThanDram) {
  Metrics dram;
  dram.bytes_random = 1'000'000;
  dram.fetches_random = 500;
  Metrics l2;
  l2.bytes_cached = 1'000'000;
  l2.fetches_cached = 500;
  const KernelConfig cfg{16, 128};
  EXPECT_GT(estimate(spec(), dram, cfg).wall_ms, estimate(spec(), l2, cfg).wall_ms);
}

TEST(CostModel, ResponseTimeCannotAmortizeBelowBlockChain) {
  // One lane crawling a long serial chain (the task-parallel kd-tree case):
  // adding more parallel queries must not shrink the reported per-query time.
  Metrics m;
  m.warp_instructions = 1'000'000;  // per the whole batch
  m.active_lane_slots = 1'000'000;
  const KernelTiming few = estimate(spec(), m, {10, 32});
  // Per-block chain: 100k instructions at 1 warp per cycle.
  const double chain_ms = 100'000 / (spec().clock_ghz * 1e9) * 1e3;
  EXPECT_GE(few.avg_query_ms, spec().launch_overhead_ms + chain_ms - 1e-9);
}

TEST(CostModel, WideBlocksIssueFasterThanNarrow) {
  Metrics m;
  m.warp_instructions = 10'000'000;
  const KernelTiming narrow = estimate(spec(), m, {60, 32});   // 1 warp per block
  const KernelTiming wide = estimate(spec(), m, {60, 128});    // 4 warps per block
  EXPECT_GT(narrow.avg_query_ms, wide.avg_query_ms);
}

TEST(CostModel, RejectsBadConfig) {
  Metrics m;
  EXPECT_THROW(estimate(spec(), m, {0, 128}), InvalidArgument);
  EXPECT_THROW(estimate(spec(), m, {1, 0}), InvalidArgument);
}

TEST(CostModel, BlocksPerSmRespectsEveryLimit) {
  Metrics m;
  // Thread-limited: 1024-thread blocks -> 2 per SM.
  EXPECT_EQ(estimate(spec(), m, {240, 1024}).blocks_per_sm, 2);
  // Shared-memory-limited: 20 KB blocks in 64 KB -> 3 per SM.
  m.shared_bytes = 20 * 1024;
  EXPECT_EQ(estimate(spec(), m, {240, 64}).blocks_per_sm, 3);
  // Block-count-limited: tiny blocks cap at the architectural 16.
  m.shared_bytes = 16;
  EXPECT_EQ(estimate(spec(), m, {240, 32}).blocks_per_sm, 16);
}

TEST(CostModel, OversizedSharedBlockStillRuns) {
  // A block needing more shared memory than an SM offers is clamped to one
  // resident block rather than dividing by zero.
  Metrics m;
  m.shared_bytes = 128 * 1024;
  const KernelTiming t = estimate(spec(), m, {10, 128});
  EXPECT_EQ(t.blocks_per_sm, 1);
  EXPECT_GT(t.occupancy, 0.0);
}

}  // namespace
}  // namespace psb::simt
