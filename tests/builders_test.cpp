// Tests for the three SS-tree construction algorithms: structural invariants,
// the paper's 100 % leaf-utilization claim for bottom-up builds, and the
// construction-quality relationships §IV-D reports.
#include <gtest/gtest.h>

#include <tuple>

#include "sstree/builders.hpp"
#include "test_util.hpp"

namespace psb::sstree {
namespace {

class BottomUpBuilderTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(BottomUpBuilderTest, HilbertBuildIsValidAndFullyPacked) {
  const auto [dims, n, degree] = GetParam();
  const PointSet points = test::small_clustered(dims, n, dims * n);
  const BuildOutput out = build_hilbert(points, degree);
  out.tree.validate();

  const auto s = out.tree.stats();
  // 100 % utilization except possibly the last leaf (paper §IV).
  const std::size_t full_leaves = points.size() / degree;
  std::size_t seen_full = 0;
  for (const NodeId id : out.tree.leaves()) {
    if (out.tree.node(id).points.size() == degree) ++seen_full;
  }
  EXPECT_EQ(seen_full, full_leaves);
  EXPECT_EQ(s.leaves, (points.size() + degree - 1) / degree);
  EXPECT_GT(out.metrics.total_bytes(), 0u);
}

TEST_P(BottomUpBuilderTest, KMeansBuildIsValidAndFullyPacked) {
  const auto [dims, n, degree] = GetParam();
  const PointSet points = test::small_clustered(dims, n, dims * n + 1);
  KMeansBuildOptions opts;
  opts.leaf_k = std::max<std::size_t>(2, n / degree / 2);
  const BuildOutput out = build_kmeans(points, degree, opts);
  out.tree.validate();
  EXPECT_EQ(out.tree.stats().leaves, (points.size() + degree - 1) / degree);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BottomUpBuilderTest,
                         ::testing::Values(std::make_tuple(2u, 500u, 16u),
                                           std::make_tuple(4u, 1000u, 32u),
                                           std::make_tuple(8u, 2000u, 64u),
                                           std::make_tuple(16u, 1000u, 128u),
                                           std::make_tuple(64u, 600u, 32u)),
                         [](const auto& info) {
                           return "d" + std::to_string(std::get<0>(info.param)) + "n" +
                                  std::to_string(std::get<1>(info.param)) + "deg" +
                                  std::to_string(std::get<2>(info.param));
                         });

TEST(TopDownBuilder, ValidTreeWithReinsertion) {
  const PointSet points = test::small_clustered(4, 1500, 77);
  const BuildOutput out = build_topdown(points, 16);
  out.tree.validate();
  // Top-down trees are NOT fully packed — that is the point of the ablation.
  EXPECT_LT(out.tree.stats().leaf_utilization, 0.999);
  EXPECT_GT(out.tree.stats().leaf_utilization, 0.2);
}

TEST(TopDownBuilder, NoReinsertionStillValid) {
  const PointSet points = test::small_clustered(3, 800, 79);
  TopDownOptions opts;
  opts.reinsert_fraction = 0;
  const BuildOutput out = build_topdown(points, 16, opts);
  out.tree.validate();
}

TEST(Builders, BottomUpHasFewerNodesThanTopDown) {
  // §IV: higher utilization -> fewer nodes -> shorter search paths.
  const PointSet points = test::small_clustered(4, 2000, 81);
  const auto bottom_up = build_hilbert(points, 32);
  const auto top_down = build_topdown(points, 32);
  EXPECT_LT(bottom_up.tree.num_nodes(), top_down.tree.num_nodes());
}

TEST(Builders, SmallInputsProduceSingleLeaf) {
  const PointSet points = test::small_clustered(2, 5, 83);
  for (const auto& out :
       {build_hilbert(points, 16), build_kmeans(points, 16), build_topdown(points, 16)}) {
    out.tree.validate();
    EXPECT_EQ(out.tree.height(), 1);
  }
}

TEST(Builders, SinglePoint) {
  PointSet points(3);
  points.append(std::vector<Scalar>{1, 2, 3});
  const auto out = build_hilbert(points, 8);
  out.tree.validate();
  EXPECT_EQ(out.tree.stats().leaves, 1u);
}

TEST(Builders, DuplicatePointsSurvive) {
  PointSet points(2);
  for (int i = 0; i < 100; ++i) points.append(std::vector<Scalar>{7, 7});
  for (const auto& out :
       {build_hilbert(points, 8), build_kmeans(points, 8), build_topdown(points, 8)}) {
    out.tree.validate();
  }
}

TEST(Builders, EmptyInputThrows) {
  PointSet points(2);
  EXPECT_THROW(build_hilbert(points, 8), InvalidArgument);
  EXPECT_THROW(build_kmeans(points, 8), InvalidArgument);
  EXPECT_THROW(build_topdown(points, 8), InvalidArgument);
}

TEST(Builders, HilbertDeterministic) {
  const PointSet points = test::small_clustered(4, 500, 87);
  const auto a = build_hilbert(points, 16);
  const auto b = build_hilbert(points, 16);
  ASSERT_EQ(a.tree.num_nodes(), b.tree.num_nodes());
  for (std::size_t i = 0; i < a.tree.leaves().size(); ++i) {
    EXPECT_EQ(a.tree.node(a.tree.leaves()[i]).points, b.tree.node(b.tree.leaves()[i]).points);
  }
}

TEST(Builders, KMeansPacksClustersContiguously) {
  // Points of one tight, well-separated cluster should land in a contiguous
  // run of leaves (clusters are serialized before packing).
  Rng rng(91);
  PointSet points(2);
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 64; ++i) {
      points.append(std::vector<Scalar>{static_cast<Scalar>(c * 10000 + rng.normal(0, 1)),
                                        static_cast<Scalar>(c * 10000 + rng.normal(0, 1))});
    }
  }
  KMeansBuildOptions opts;
  opts.leaf_k = 4;
  const auto out = build_kmeans(points, 16, opts);
  out.tree.validate();
  // Each cluster occupies 64/16 = 4 leaves; cluster membership must not
  // interleave: every leaf's points belong to a single cluster.
  for (const NodeId id : out.tree.leaves()) {
    const auto& pts = out.tree.node(id).points;
    const PointId c0 = pts.front() / 64;
    for (const PointId p : pts) EXPECT_EQ(p / 64, c0) << "leaf mixes clusters";
  }
}

TEST(Builders, MetricsReportConstructionCost) {
  const PointSet points = test::small_clustered(4, 1000, 93);
  const auto hil = build_hilbert(points, 32);
  const auto top = build_topdown(points, 32);
  // The paper's claim: bottom-up construction is far cheaper than serial
  // top-down insertion. Compare serialized work (top-down is all-serial).
  EXPECT_GT(top.metrics.serial_ops, hil.metrics.serial_ops * 10);
}

}  // namespace
}  // namespace psb::sstree
