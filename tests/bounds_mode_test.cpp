// Tests for the rectangle-bounds (packed R-tree) mode of the SS-tree — the
// §II-C shape ablation. Exactness must be identical to sphere mode; node
// sizes and per-child arithmetic must differ exactly as the paper argues.
#include <gtest/gtest.h>

#include "knn/best_first.hpp"
#include "knn/branch_and_bound.hpp"
#include "knn/psb.hpp"
#include "sstree/builders.hpp"
#include "test_util.hpp"

namespace psb::sstree {
namespace {

BuildOutput build_rect(const PointSet& points, std::size_t degree) {
  KMeansBuildOptions opts;
  opts.bounds = BoundsMode::kRect;
  return build_kmeans(points, degree, opts);
}

TEST(RectMode, StructureIsValidAndRectsAreStaged) {
  const PointSet points = test::small_clustered(8, 1500, 7);
  const BuildOutput out = build_rect(points, 32);
  out.tree.validate();
  EXPECT_EQ(out.tree.bounds_mode(), BoundsMode::kRect);

  const Node& root = out.tree.node(out.tree.root());
  const std::size_t c = root.children.size();
  ASSERT_EQ(root.child_lo.size(), c * 8);
  ASSERT_EQ(root.child_hi.size(), c * 8);
  for (std::size_t i = 0; i < c; ++i) {
    const Node& child = out.tree.node(root.children[i]);
    for (std::size_t t = 0; t < 8; ++t) {
      EXPECT_EQ(root.child_lo[t * c + i], child.rect.lo[t]);
      EXPECT_EQ(root.child_hi[t * c + i], child.rect.hi[t]);
      EXPECT_LE(root.rect.lo[t], child.rect.lo[t]);
      EXPECT_GE(root.rect.hi[t], child.rect.hi[t]);
    }
  }
}

TEST(RectMode, NodeBytesMatchShapeFormula) {
  const PointSet points = test::small_clustered(16, 2000, 9);
  const BuildOutput sphere = sstree::build_kmeans(points, 64);
  const BuildOutput rect = build_rect(points, 64);
  const Node& sroot = sphere.tree.node(sphere.tree.root());
  const Node& rroot = rect.tree.node(rect.tree.root());
  ASSERT_EQ(sroot.children.size(), rroot.children.size());
  const std::size_t c = sroot.children.size();
  // sphere: (d+1) floats/child; rect: 2d floats/child.
  EXPECT_EQ(sphere.tree.node_byte_size(sroot), 32 + c * (17 * 4 + 4));
  EXPECT_EQ(rect.tree.node_byte_size(rroot), 32 + c * (32 * 4 + 4));
}

class RectModeExactness
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(RectModeExactness, AllTraversalsMatchReference) {
  const auto [dims, k] = GetParam();
  const PointSet points = test::small_clustered(dims, 1200, dims * 13 + k);
  const PointSet queries = test::random_queries(dims, 10, dims + k);
  const BuildOutput out = build_rect(points, 32);
  out.tree.validate();

  knn::GpuKnnOptions opts;
  opts.k = k;
  const auto psb_r = knn::psb_batch(out.tree, queries, opts);
  const auto bnb_r = knn::bnb_batch(out.tree, queries, opts);
  const auto bf_r = knn::best_first_batch(out.tree, queries, k);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto expected = test::reference_knn_distances(points, queries[q], k);
    test::expect_knn_matches(psb_r.queries[q].neighbors, expected, "psb/rect");
    test::expect_knn_matches(bnb_r.queries[q].neighbors, expected, "bnb/rect");
    test::expect_knn_matches(bf_r[q].neighbors, expected, "best_first/rect");
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RectModeExactness,
                         ::testing::Combine(::testing::Values<std::size_t>(2, 8, 32),
                                            ::testing::Values<std::size_t>(1, 16, 64)));

TEST(RectMode, HilbertBuilderSupportsRects) {
  const PointSet points = test::small_clustered(4, 800, 15);
  HilbertBuildOptions opts;
  opts.bounds = BoundsMode::kRect;
  const BuildOutput out = build_hilbert(points, 16, opts);
  out.tree.validate();
  EXPECT_EQ(out.tree.bounds_mode(), BoundsMode::kRect);
}

TEST(RectMode, RectBoundsPruneAtLeastAsTightlyPerNode) {
  // An MBR is contained in any bounding sphere of the same points' extremes
  // along each axis... not in general — but its MINDIST can never be *looser*
  // than 0 and typically prunes better; structurally we assert that rect
  // traversal visits no more leaves than sphere traversal on the same
  // packing (tighter shapes => fewer candidate subtrees).
  const PointSet points = test::small_clustered(16, 4000, 17);
  std::vector<PointId> qids;
  for (PointId i = 0; i < 10; ++i) qids.push_back(i * 397);
  const PointSet queries = points.subset(qids);
  const BuildOutput sphere = sstree::build_kmeans(points, 64);
  const BuildOutput rect = build_rect(points, 64);
  knn::GpuKnnOptions opts;
  const auto rs = knn::psb_batch(sphere.tree, queries, opts);
  const auto rr = knn::psb_batch(rect.tree, queries, opts);
  EXPECT_LE(rr.stats.leaves_visited, rs.stats.leaves_visited * 11 / 10);
  // ...while each rect node is bigger, so bytes per node favor spheres.
  EXPECT_GT(rect.tree.stats().total_bytes, sphere.tree.stats().total_bytes);
}

}  // namespace
}  // namespace psb::sstree
