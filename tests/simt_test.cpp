// Tests for the SIMT simulator substrate: the charging laws are what make
// the paper's metrics (warp efficiency, accessed bytes) trustworthy.
#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"
#include "simt/block.hpp"
#include "simt/task_parallel.hpp"

namespace psb::simt {
namespace {

TEST(Metrics, WarpEfficiencyDefinition) {
  Metrics m;
  EXPECT_DOUBLE_EQ(m.warp_efficiency(), 1.0);  // nothing issued
  m.warp_instructions = 10;
  m.active_lane_slots = 320;
  EXPECT_DOUBLE_EQ(m.warp_efficiency(), 1.0);  // all 32 lanes active
  m.active_lane_slots = 160;
  EXPECT_DOUBLE_EQ(m.warp_efficiency(), 0.5);
}

TEST(Metrics, MergeSumsAndMaxes) {
  Metrics a;
  a.warp_instructions = 1;
  a.bytes_coalesced = 100;
  a.shared_bytes = 64;
  Metrics b;
  b.warp_instructions = 2;
  b.bytes_random = 50;
  b.shared_bytes = 32;
  a.merge(b);
  EXPECT_EQ(a.warp_instructions, 3u);
  EXPECT_EQ(a.total_bytes(), 150u);
  EXPECT_EQ(a.shared_bytes, 64u);  // high-water, not sum
}

TEST(Block, DivergentStepsCountPartialWarpInstructions) {
  DeviceSpec spec;  // warp_size 32
  Metrics m;
  Block block(spec, 64, &m);
  block.par_for(64, 3, [](std::size_t) {});  // full warps: no divergence
  EXPECT_EQ(m.divergent_steps, 0u);
  block.par_for(40, 3, [](std::size_t) {});  // ragged tail warp (8 of 32)
  EXPECT_EQ(m.divergent_steps, 3u);
  block.par_for(7, 2, [](std::size_t) {});  // single partial warp
  EXPECT_EQ(m.divergent_steps, 5u);
}

TEST(Block, SerializeDoesNotCountAsDivergence) {
  DeviceSpec spec;
  Metrics m;
  Block block(spec, 32, &m);
  block.serialize(5);
  EXPECT_GT(m.serial_ops, 0u);
  EXPECT_EQ(m.divergent_steps, 0u);  // serialization is accounted separately
}

TEST(Metrics, MergeSumsDivergentSteps) {
  Metrics a;
  a.divergent_steps = 3;
  Metrics b;
  b.divergent_steps = 4;
  a.merge(b);
  EXPECT_EQ(a.divergent_steps, 7u);
}

TEST(Block, RoundsThreadsUpToWarp) {
  DeviceSpec spec;
  Metrics m;
  Block block(spec, 33, &m);
  EXPECT_EQ(block.threads(), 64);
  Block one(spec, 1, &m);
  EXPECT_EQ(one.threads(), 32);
}

TEST(Block, ParForExecutesEveryTask) {
  DeviceSpec spec;
  Metrics m;
  Block block(spec, 64, &m);
  std::vector<int> hit(150, 0);
  block.par_for(hit.size(), 1, [&](std::size_t i) { hit[i] += 1; });
  EXPECT_TRUE(std::all_of(hit.begin(), hit.end(), [](int v) { return v == 1; }));
}

TEST(Block, ParForChargesRaggedTail) {
  DeviceSpec spec;
  Metrics m;
  Block block(spec, 64, &m);  // 2 warps
  // 96 tasks on 64 lanes: round 1 = 64 active (2 warps), round 2 = 32 active
  // (1 live warp; the empty warp issues nothing).
  block.par_for(96, 1, [](std::size_t) {});
  EXPECT_EQ(m.warp_instructions, 3u);
  EXPECT_EQ(m.active_lane_slots, 96u);
  EXPECT_DOUBLE_EQ(m.warp_efficiency(), 1.0);
}

TEST(Block, DivergenceLowersEfficiency) {
  DeviceSpec spec;
  Metrics m;
  Block block(spec, 32, &m);
  block.par_for(8, 1, [](std::size_t) {});  // 8 of 32 lanes
  EXPECT_EQ(m.warp_instructions, 1u);
  EXPECT_EQ(m.active_lane_slots, 8u);
  EXPECT_DOUBLE_EQ(m.warp_efficiency(), 0.25);
}

TEST(Block, OpsMultiplierScalesCharges) {
  DeviceSpec spec;
  Metrics m;
  Block block(spec, 32, &m);
  block.par_for(32, 10, [](std::size_t) {});
  EXPECT_EQ(m.warp_instructions, 10u);
  EXPECT_EQ(m.active_lane_slots, 320u);
}

TEST(Block, LoadGlobalRoutesByPattern) {
  DeviceSpec spec;
  Metrics m;
  Block block(spec, 32, &m);
  block.load_global(1000, Access::kCoalesced);
  block.load_global(500, Access::kRandom);
  block.load_global(200, Access::kCached);
  EXPECT_EQ(m.bytes_coalesced, 1000u);
  EXPECT_EQ(m.bytes_random, 500u);
  EXPECT_EQ(m.bytes_cached, 200u);
  EXPECT_EQ(m.node_fetches, 3u);
  EXPECT_EQ(m.total_bytes(), 1700u);
  // Only dependent fetches pay latency; streaming does not.
  EXPECT_EQ(m.fetches_random, 1u);
  EXPECT_EQ(m.fetches_cached, 1u);
}

TEST(Block, SerializeChargesSingleLaneSteps) {
  DeviceSpec spec;
  Metrics m;
  Block block(spec, 128, &m);
  block.serialize(10);
  EXPECT_EQ(m.serial_ops, 10u);
  EXPECT_EQ(m.warp_instructions, 10u);
  EXPECT_EQ(m.active_lane_slots, 10u);
  EXPECT_DOUBLE_EQ(m.warp_efficiency(), 1.0 / 32.0);
}

TEST(Block, UseSharedKeepsHighWater) {
  DeviceSpec spec;
  Metrics m;
  Block block(spec, 32, &m);
  block.use_shared(100);
  block.use_shared(50);
  EXPECT_EQ(m.shared_bytes, 100u);
}

TEST(Block, ReductionsComputeCorrectValues) {
  DeviceSpec spec;
  Metrics m;
  Block block(spec, 128, &m);
  const std::vector<Scalar> v{5, 2, 9, 1, 7, 3};
  EXPECT_FLOAT_EQ(block.reduce_min(v), 1.0F);
  EXPECT_FLOAT_EQ(block.reduce_max(v), 9.0F);
  EXPECT_EQ(block.reduce_argmin(v), 3u);
  EXPECT_EQ(block.reduce_argmax(v), 2u);
  EXPECT_FLOAT_EQ(block.reduce_kth_min(v, 1), 1.0F);
  EXPECT_FLOAT_EQ(block.reduce_kth_min(v, 3), 3.0F);
  EXPECT_FLOAT_EQ(block.reduce_kth_min(v, 6), 9.0F);
  // k beyond size clamps to the maximum.
  EXPECT_FLOAT_EQ(block.reduce_kth_min(v, 100), 9.0F);
}

TEST(Block, ReductionChargesLogTree) {
  DeviceSpec spec;
  Metrics m;
  Block block(spec, 128, &m);
  const std::vector<Scalar> v(64, 1.0F);
  block.reduce_min(v);
  // Widths 32, 16, 8, 4, 2, 1 — six steps; the 32-wide step is one warp.
  EXPECT_EQ(m.warp_instructions, 6u);
  EXPECT_EQ(m.active_lane_slots, 63u);
}

TEST(Block, ZeroTasksChargeNothing) {
  DeviceSpec spec;
  Metrics m;
  Block block(spec, 64, &m);
  block.par_for(0, 5, [](std::size_t) { FAIL() << "body must not run"; });
  EXPECT_EQ(m.warp_instructions, 0u);
}

TEST(Block, SingleElementReduction) {
  DeviceSpec spec;
  Metrics m;
  Block block(spec, 32, &m);
  const std::vector<Scalar> one{7.5F};
  EXPECT_FLOAT_EQ(block.reduce_min(one), 7.5F);
  EXPECT_FLOAT_EQ(block.reduce_kth_min(one, 1), 7.5F);
  EXPECT_EQ(block.reduce_argmax(one), 0u);
}

TEST(Block, EmptyReductionThrows) {
  DeviceSpec spec;
  Metrics m;
  Block block(spec, 32, &m);
  EXPECT_THROW(block.reduce_min({}), InvalidArgument);
}

TEST(TaskParallel, SingleLaneEfficiencyIsOneOverWarp) {
  DeviceSpec spec;
  Metrics m;
  LaneWork lw;
  lw.steps = 100;
  lw.bytes_random = 640;
  accumulate_task_parallel(spec, {&lw, 1}, &m);
  EXPECT_EQ(m.warp_instructions, 100u);
  EXPECT_EQ(m.active_lane_slots, 100u);
  EXPECT_NEAR(m.warp_efficiency(), 1.0 / 32.0, 1e-12);
  EXPECT_EQ(m.bytes_random, 640u);
}

TEST(TaskParallel, WarpCostIsMaxLane) {
  DeviceSpec spec;
  Metrics m;
  std::vector<LaneWork> lanes(32);
  for (std::size_t i = 0; i < lanes.size(); ++i) lanes[i].steps = i + 1;  // 1..32
  accumulate_task_parallel(spec, lanes, &m);
  EXPECT_EQ(m.warp_instructions, 32u);                 // max lane
  EXPECT_EQ(m.active_lane_slots, 32u * 33u / 2u);      // sum of lanes
  EXPECT_NEAR(m.warp_efficiency(), (32.0 * 33 / 2) / (32 * 32), 1e-12);
}

TEST(TaskParallel, LanesPackIntoMultipleWarps) {
  DeviceSpec spec;
  Metrics m;
  std::vector<LaneWork> lanes(48);
  for (auto& lw : lanes) lw.steps = 10;
  accumulate_task_parallel(spec, lanes, &m);
  // Warp 1: 32 lanes @10; warp 2: 16 lanes @10.
  EXPECT_EQ(m.warp_instructions, 20u);
  EXPECT_EQ(m.active_lane_slots, 480u);
}

}  // namespace
}  // namespace psb::simt
