// Differential correctness sweep: every traversal algorithm against the
// brute-force reference over a (k, dims, degree) grid on seeded uniform and
// NOAA-like data. Stronger than the per-algorithm exactness tests: when the
// reference answer has no distance tie at the k-th boundary, the *id
// sequences* must be identical too — the KnnHeap keeps the k smallest
// (dist, id) pairs, so every exact algorithm must return literally the same
// neighbor list, not just the same distances.
#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "data/noaa_synth.hpp"
#include "data/synthetic.hpp"
#include "engine/batch_engine.hpp"
#include "knn/best_first.hpp"
#include "knn/branch_and_bound.hpp"
#include "knn/brute_force.hpp"
#include "knn/implicit_stackless.hpp"
#include "knn/psb.hpp"
#include "knn/stackless_baselines.hpp"
#include "knn/task_parallel_sstree.hpp"
#include "layout/implicit.hpp"
#include "obs/registry.hpp"
#include "shard/sharded_engine.hpp"
#include "sstree/builders.hpp"
#include "test_util.hpp"

namespace psb {
namespace {

struct Config {
  std::size_t k;
  std::size_t dims;  // ignored for the NOAA dataset (fixed 4-D)
  std::size_t degree;
};

std::string config_name(const testing::TestParamInfo<Config>& info) {
  return "k" + std::to_string(info.param.k) + "d" + std::to_string(info.param.dims) +
         "deg" + std::to_string(info.param.degree);
}

/// True when the reference k-th and (k+1)-th distances are (nearly) equal:
/// a tree algorithm may then legitimately keep either point, because pruning
/// tests are strict (`mindist < bound`) and a tied subtree can be skipped.
bool boundary_tied(const std::vector<Scalar>& ref_kplus1, std::size_t k) {
  if (ref_kplus1.size() <= k) return false;  // k covers the whole dataset
  const double a = ref_kplus1[k - 1];
  const double b = ref_kplus1[k];
  return b - a <= 1e-6 * (1.0 + std::abs(b));
}

void expect_same_ids(const std::vector<KnnHeap::Entry>& got,
                     const std::vector<KnnHeap::Entry>& want, const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << label << " rank " << i;
    EXPECT_EQ(got[i].dist, want[i].dist) << label << " rank " << i;
  }
}

/// Tie-aware per-query check shared by the direct and sharded sweeps: exact
/// id sequence when the k-th boundary is unambiguous, distance multiset
/// otherwise.
void expect_matches_reference(const PointSet& data, std::span<const Scalar> query,
                              std::size_t k, const knn::QueryResult& got,
                              const knn::QueryResult& reference, const std::string& label) {
  const std::vector<Scalar> ref_kplus1 = test::reference_knn_distances(data, query, k + 1);
  if (boundary_tied(ref_kplus1, k)) {
    std::vector<Scalar> expected(
        ref_kplus1.begin(),
        ref_kplus1.begin() + static_cast<std::ptrdiff_t>(reference.neighbors.size()));
    test::expect_knn_matches(got.neighbors, expected, label.c_str());
  } else {
    expect_same_ids(got.neighbors, reference.neighbors, label);
  }
}

void run_differential(const PointSet& data, const PointSet& queries, std::size_t k,
                      std::size_t degree, const std::string& dataset) {
  const sstree::SSTree tree = sstree::build_kmeans(data, degree).tree;
  tree.validate();

  knn::GpuKnnOptions opts;
  opts.k = k;
  const knn::BatchResult reference = knn::brute_force_batch(data, queries, opts);

  knn::TaskParallelSsOptions tp;
  tp.k = k;

  // The eighth traversal variant runs on the pointer-free preorder arena.
  const layout::ImplicitLayout implicit(tree);
  knn::GpuKnnOptions iopts = opts;
  iopts.implicit = &implicit;

  const std::vector<std::pair<std::string, knn::BatchResult>> candidates = {
      {"psb", knn::psb_batch(tree, queries, opts)},
      {"branch_and_bound", knn::bnb_batch(tree, queries, opts)},
      {"best_first", knn::best_first_gpu_batch(tree, queries, opts)},
      {"stackless_restart", knn::restart_batch(tree, queries, opts)},
      {"stackless_skip", knn::skip_pointer_batch(tree, queries, opts)},
      {"task_parallel", knn::task_parallel_sstree_knn(tree, queries, tp)},
      {"implicit_stackless", knn::implicit_stackless_batch(tree, queries, iopts)},
  };

  for (std::size_t q = 0; q < queries.size(); ++q) {
    for (const auto& [name, result] : candidates) {
      const std::string label = dataset + "/" + name + " query " + std::to_string(q);
      expect_matches_reference(data, queries[q], k, result.queries[q],
                               reference.queries[q], label);
    }
  }
}

class DifferentialSweep : public testing::TestWithParam<Config> {};

TEST_P(DifferentialSweep, UniformMatchesBruteForce) {
  const Config& cfg = GetParam();
  const PointSet data = data::make_uniform(cfg.dims, 2000, 1000.0, /*seed=*/20160805);
  const PointSet queries = test::random_queries(cfg.dims, 12, /*seed=*/41);
  run_differential(data, queries, cfg.k, cfg.degree, "uniform");
}

TEST_P(DifferentialSweep, NoaaSynthMatchesBruteForce) {
  const Config& cfg = GetParam();
  data::NoaaSpec spec;
  spec.stations = 60;
  spec.readings_per_station = 30;  // 1800 points, 4-D, heavy duplicate structure
  spec.seed = 1973;
  const PointSet data = data::make_noaa_like(spec);
  const PointSet queries = data::sample_queries(data, 12, /*jitter=*/0.5, /*seed=*/7);
  run_differential(data, queries, cfg.k, cfg.degree, "noaa");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DifferentialSweep,
    testing::Values(Config{1, 2, 16}, Config{1, 4, 128}, Config{8, 2, 128},
                    Config{8, 4, 16}, Config{8, 16, 128}, Config{32, 2, 16},
                    Config{32, 4, 128}, Config{32, 16, 16}, Config{1, 16, 128}),
    config_name);

// ---------------------------------------------------------------------------
// Sharded routing: the same differential contract holds when every algorithm
// runs through the scatter-gather ShardedEngine, across shard counts that
// cover the delegate path (S=1), a balanced split (S=4) and a ragged prime
// split (S=13).
// ---------------------------------------------------------------------------

constexpr engine::Algorithm kAllAlgorithms[] = {
    engine::Algorithm::kPsb,           engine::Algorithm::kBestFirst,
    engine::Algorithm::kBranchAndBound, engine::Algorithm::kStacklessRestart,
    engine::Algorithm::kStacklessSkip,  engine::Algorithm::kBruteForce,
    engine::Algorithm::kTaskParallel,   engine::Algorithm::kImplicitStackless,
};

class ShardedDifferential : public testing::TestWithParam<engine::Algorithm> {};

std::string algo_name(const testing::TestParamInfo<engine::Algorithm>& info) {
  return std::string(engine::algorithm_name(info.param));
}

TEST_P(ShardedDifferential, ScatterGatherMatchesBruteForceAcrossShardCounts) {
  data::NoaaSpec spec;
  spec.stations = 40;
  spec.readings_per_station = 25;  // 1000 points, duplicate-heavy
  spec.seed = 1973;
  const PointSet data = data::make_noaa_like(spec);
  const PointSet queries = data::sample_queries(data, 10, /*jitter=*/0.5, /*seed=*/11);
  const std::size_t k = 8;

  knn::GpuKnnOptions ref_opts;
  ref_opts.k = k;
  const knn::BatchResult reference = knn::brute_force_batch(data, queries, ref_opts);

  for (const std::size_t shards : {1u, 4u, 13u}) {
    shard::ShardedEngineOptions opts;
    opts.num_shards = shards;
    opts.degree = 16;
    opts.engine.algorithm = GetParam();
    opts.engine.gpu.k = k;
    opts.engine.use_snapshot = shards == 4;  // exercise both fetch paths
    shard::ShardedEngine eng(data, opts);
    const knn::BatchResult res = eng.run(queries);
    ASSERT_EQ(res.queries.size(), queries.size());
    EXPECT_TRUE(res.all_ok());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const std::string label = "sharded_S" + std::to_string(shards) + "/" +
                                std::string(engine::algorithm_name(GetParam())) + " query " +
                                std::to_string(q);
      expect_matches_reference(data, queries[q], k, res.queries[q], reference.queries[q],
                               label);
    }
  }
}

TEST_P(ShardedDifferential, SingleShardBitIdenticalToBatchEngine) {
  // S=1 is an identity partition over the same builder, so the sharded
  // engine must reproduce the unsharded BatchEngine *exactly*: neighbor
  // lists, per-query stats, device metrics, per-query traces, and the
  // engine.* registry counters the embedded BatchEngine bumps.
  const PointSet data = data::make_uniform(4, 1200, 1000.0, /*seed=*/5150);
  const PointSet queries = test::random_queries(4, 8, /*seed=*/51);

  for (const bool use_snapshot : {false, true}) {
    engine::BatchEngineOptions eopts;
    eopts.algorithm = GetParam();
    eopts.gpu.k = 10;
    eopts.use_snapshot = use_snapshot;

    const sstree::SSTree tree = sstree::build_kmeans(data, 16).tree;
    engine::BatchEngine unsharded(tree, eopts);

    shard::ShardedEngineOptions sopts;
    sopts.num_shards = 1;
    sopts.degree = 16;
    sopts.engine = eopts;

    const auto engine_counters = [](const obs::Registry::Snapshot& before,
                                    const obs::Registry::Snapshot& after) {
      std::vector<std::pair<std::string, std::uint64_t>> deltas;
      for (const auto& [name, value] : after.counters) {
        if (name.rfind("engine.", 0) != 0 || name.rfind("engine.shard.", 0) == 0) continue;
        std::uint64_t prev = 0;
        for (const auto& [n, v] : before.counters) {
          if (n == name) prev = v;
        }
        if (value != prev) deltas.emplace_back(name, value - prev);
      }
      return deltas;
    };

    obs::Registry::Snapshot s0 = obs::Registry::global().snapshot();
    const engine::BatchEngine::TracedRun want = unsharded.run_traced(queries);
    obs::Registry::Snapshot s1 = obs::Registry::global().snapshot();
    shard::ShardedEngine eng(data, sopts);
    const shard::ShardedEngine::TracedRun got = eng.run_traced(queries);
    obs::Registry::Snapshot s2 = obs::Registry::global().snapshot();
    EXPECT_EQ(engine_counters(s0, s1), engine_counters(s1, s2))
        << "registry counter deltas diverged (snapshot=" << use_snapshot << ")";

    ASSERT_EQ(got.result.queries.size(), want.result.queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const std::string label = "S1 vs BatchEngine query " + std::to_string(q) +
                                (use_snapshot ? " (snapshot)" : "");
      expect_same_ids(got.result.queries[q].neighbors, want.result.queries[q].neighbors,
                      label);
      EXPECT_EQ(got.result.queries[q].status, want.result.queries[q].status) << label;
      const knn::TraversalStats& gs = got.result.queries[q].stats;
      const knn::TraversalStats& ws = want.result.queries[q].stats;
      EXPECT_EQ(gs.nodes_visited, ws.nodes_visited) << label;
      EXPECT_EQ(gs.leaves_visited, ws.leaves_visited) << label;
      EXPECT_EQ(gs.points_examined, ws.points_examined) << label;
      EXPECT_EQ(gs.backtracks, ws.backtracks) << label;
      EXPECT_EQ(gs.leaf_scans, ws.leaf_scans) << label;
      EXPECT_EQ(gs.restarts, ws.restarts) << label;
      EXPECT_EQ(gs.heap_inserts, ws.heap_inserts) << label;
      EXPECT_EQ(gs.heap_pushes, ws.heap_pushes) << label;
    }
    EXPECT_EQ(got.result.metrics.warp_instructions, want.result.metrics.warp_instructions);
    EXPECT_EQ(got.result.metrics.bytes_coalesced, want.result.metrics.bytes_coalesced);
    EXPECT_EQ(got.result.metrics.bytes_random, want.result.metrics.bytes_random);
    EXPECT_EQ(got.result.metrics.bytes_cached, want.result.metrics.bytes_cached);
    EXPECT_EQ(got.result.metrics.node_fetches, want.result.metrics.node_fetches);
    EXPECT_EQ(got.result.metrics.serial_ops, want.result.metrics.serial_ops);

    ASSERT_EQ(got.trace.algorithms.size(), 1u);
    ASSERT_EQ(want.trace.algorithms.size(), 1u);
    const obs::AlgorithmTrace& gt = got.trace.algorithms[0];
    const obs::AlgorithmTrace& wt = want.trace.algorithms[0];
    EXPECT_EQ(gt.algorithm, wt.algorithm);
    ASSERT_EQ(gt.queries.size(), wt.queries.size());
    for (std::size_t q = 0; q < gt.queries.size(); ++q) {
      EXPECT_EQ(gt.queries[q].query_index, wt.queries[q].query_index);
      for (std::size_t c = 0; c < obs::kNumTraceCounters; ++c) {
        EXPECT_EQ(gt.queries[q].counters[c], wt.queries[q].counters[c])
            << "trace counter " << c << " query " << q << " snapshot=" << use_snapshot;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ShardedDifferential,
                         testing::ValuesIn(kAllAlgorithms), algo_name);

// The id-sequence contract depends on the heap's deterministic tie-breaking;
// pin it down directly so a regression fails here and not 9 sweep cases deep.
TEST(DeterministicTieBreak, HeapKeepsSmallestIdsOnTies) {
  KnnHeap heap(3);
  EXPECT_TRUE(heap.offer(1.0F, 30));
  EXPECT_TRUE(heap.offer(1.0F, 20));
  EXPECT_TRUE(heap.offer(1.0F, 40));
  EXPECT_TRUE(heap.offer(1.0F, 10));   // evicts id 40 (largest tied id)
  EXPECT_FALSE(heap.offer(1.0F, 50));  // worse than everything retained
  const auto sorted = heap.sorted();
  ASSERT_EQ(sorted.size(), 3U);
  EXPECT_EQ(sorted[0].id, 10U);
  EXPECT_EQ(sorted[1].id, 20U);
  EXPECT_EQ(sorted[2].id, 30U);
}

TEST(DeterministicTieBreak, ArrivalOrderIrrelevant) {
  const std::vector<std::pair<Scalar, PointId>> entries = {
      {2.0F, 7}, {1.0F, 9}, {2.0F, 3}, {1.5F, 8}, {2.0F, 1}, {3.0F, 0}};
  std::vector<std::vector<KnnHeap::Entry>> outcomes;
  for (int rot = 0; rot < 6; ++rot) {
    KnnHeap heap(4);
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const auto& [d, id] = entries[(i + static_cast<std::size_t>(rot)) % entries.size()];
      heap.offer(d, id);
    }
    outcomes.push_back(heap.sorted());
  }
  for (std::size_t rot = 1; rot < outcomes.size(); ++rot) {
    ASSERT_EQ(outcomes[rot].size(), outcomes[0].size());
    for (std::size_t i = 0; i < outcomes[0].size(); ++i) {
      EXPECT_EQ(outcomes[rot][i].id, outcomes[0][i].id) << "rotation " << rot;
      EXPECT_EQ(outcomes[rot][i].dist, outcomes[0][i].dist) << "rotation " << rot;
    }
  }
}

}  // namespace
}  // namespace psb
