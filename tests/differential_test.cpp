// Differential correctness sweep: every traversal algorithm against the
// brute-force reference over a (k, dims, degree) grid on seeded uniform and
// NOAA-like data. Stronger than the per-algorithm exactness tests: when the
// reference answer has no distance tie at the k-th boundary, the *id
// sequences* must be identical too — the KnnHeap keeps the k smallest
// (dist, id) pairs, so every exact algorithm must return literally the same
// neighbor list, not just the same distances.
#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "data/noaa_synth.hpp"
#include "data/synthetic.hpp"
#include "knn/best_first.hpp"
#include "knn/branch_and_bound.hpp"
#include "knn/brute_force.hpp"
#include "knn/psb.hpp"
#include "knn/stackless_baselines.hpp"
#include "knn/task_parallel_sstree.hpp"
#include "sstree/builders.hpp"
#include "test_util.hpp"

namespace psb {
namespace {

struct Config {
  std::size_t k;
  std::size_t dims;  // ignored for the NOAA dataset (fixed 4-D)
  std::size_t degree;
};

std::string config_name(const testing::TestParamInfo<Config>& info) {
  return "k" + std::to_string(info.param.k) + "d" + std::to_string(info.param.dims) +
         "deg" + std::to_string(info.param.degree);
}

/// True when the reference k-th and (k+1)-th distances are (nearly) equal:
/// a tree algorithm may then legitimately keep either point, because pruning
/// tests are strict (`mindist < bound`) and a tied subtree can be skipped.
bool boundary_tied(const std::vector<Scalar>& ref_kplus1, std::size_t k) {
  if (ref_kplus1.size() <= k) return false;  // k covers the whole dataset
  const double a = ref_kplus1[k - 1];
  const double b = ref_kplus1[k];
  return b - a <= 1e-6 * (1.0 + std::abs(b));
}

void expect_same_ids(const std::vector<KnnHeap::Entry>& got,
                     const std::vector<KnnHeap::Entry>& want, const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << label << " rank " << i;
    EXPECT_EQ(got[i].dist, want[i].dist) << label << " rank " << i;
  }
}

void run_differential(const PointSet& data, const PointSet& queries, std::size_t k,
                      std::size_t degree, const std::string& dataset) {
  const sstree::SSTree tree = sstree::build_kmeans(data, degree).tree;
  tree.validate();

  knn::GpuKnnOptions opts;
  opts.k = k;
  const knn::BatchResult reference = knn::brute_force_batch(data, queries, opts);

  knn::TaskParallelSsOptions tp;
  tp.k = k;

  const std::vector<std::pair<std::string, knn::BatchResult>> candidates = {
      {"psb", knn::psb_batch(tree, queries, opts)},
      {"branch_and_bound", knn::bnb_batch(tree, queries, opts)},
      {"best_first", knn::best_first_gpu_batch(tree, queries, opts)},
      {"stackless_restart", knn::restart_batch(tree, queries, opts)},
      {"stackless_skip", knn::skip_pointer_batch(tree, queries, opts)},
      {"task_parallel", knn::task_parallel_sstree_knn(tree, queries, tp)},
  };

  for (std::size_t q = 0; q < queries.size(); ++q) {
    const std::vector<Scalar> ref_kplus1 =
        test::reference_knn_distances(data, queries[q], k + 1);
    const bool tied = boundary_tied(ref_kplus1, k);
    for (const auto& [name, result] : candidates) {
      const std::string label = dataset + "/" + name + " query " + std::to_string(q);
      if (tied) {
        // Tie at the boundary: the retained set is ambiguous; distances must
        // still match the reference multiset.
        std::vector<Scalar> expected(ref_kplus1.begin(),
                                     ref_kplus1.begin() + static_cast<std::ptrdiff_t>(
                                                              reference.queries[q].neighbors.size()));
        test::expect_knn_matches(result.queries[q].neighbors, expected, label.c_str());
      } else {
        expect_same_ids(result.queries[q].neighbors, reference.queries[q].neighbors, label);
      }
    }
  }
}

class DifferentialSweep : public testing::TestWithParam<Config> {};

TEST_P(DifferentialSweep, UniformMatchesBruteForce) {
  const Config& cfg = GetParam();
  const PointSet data = data::make_uniform(cfg.dims, 2000, 1000.0, /*seed=*/20160805);
  const PointSet queries = test::random_queries(cfg.dims, 12, /*seed=*/41);
  run_differential(data, queries, cfg.k, cfg.degree, "uniform");
}

TEST_P(DifferentialSweep, NoaaSynthMatchesBruteForce) {
  const Config& cfg = GetParam();
  data::NoaaSpec spec;
  spec.stations = 60;
  spec.readings_per_station = 30;  // 1800 points, 4-D, heavy duplicate structure
  spec.seed = 1973;
  const PointSet data = data::make_noaa_like(spec);
  const PointSet queries = data::sample_queries(data, 12, /*jitter=*/0.5, /*seed=*/7);
  run_differential(data, queries, cfg.k, cfg.degree, "noaa");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DifferentialSweep,
    testing::Values(Config{1, 2, 16}, Config{1, 4, 128}, Config{8, 2, 128},
                    Config{8, 4, 16}, Config{8, 16, 128}, Config{32, 2, 16},
                    Config{32, 4, 128}, Config{32, 16, 16}, Config{1, 16, 128}),
    config_name);

// The id-sequence contract depends on the heap's deterministic tie-breaking;
// pin it down directly so a regression fails here and not 9 sweep cases deep.
TEST(DeterministicTieBreak, HeapKeepsSmallestIdsOnTies) {
  KnnHeap heap(3);
  EXPECT_TRUE(heap.offer(1.0F, 30));
  EXPECT_TRUE(heap.offer(1.0F, 20));
  EXPECT_TRUE(heap.offer(1.0F, 40));
  EXPECT_TRUE(heap.offer(1.0F, 10));   // evicts id 40 (largest tied id)
  EXPECT_FALSE(heap.offer(1.0F, 50));  // worse than everything retained
  const auto sorted = heap.sorted();
  ASSERT_EQ(sorted.size(), 3U);
  EXPECT_EQ(sorted[0].id, 10U);
  EXPECT_EQ(sorted[1].id, 20U);
  EXPECT_EQ(sorted[2].id, 30U);
}

TEST(DeterministicTieBreak, ArrivalOrderIrrelevant) {
  const std::vector<std::pair<Scalar, PointId>> entries = {
      {2.0F, 7}, {1.0F, 9}, {2.0F, 3}, {1.5F, 8}, {2.0F, 1}, {3.0F, 0}};
  std::vector<std::vector<KnnHeap::Entry>> outcomes;
  for (int rot = 0; rot < 6; ++rot) {
    KnnHeap heap(4);
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const auto& [d, id] = entries[(i + static_cast<std::size_t>(rot)) % entries.size()];
      heap.offer(d, id);
    }
    outcomes.push_back(heap.sorted());
  }
  for (std::size_t rot = 1; rot < outcomes.size(); ++rot) {
    ASSERT_EQ(outcomes[rot].size(), outcomes[0].size());
    for (std::size_t i = 0; i < outcomes[0].size(); ++i) {
      EXPECT_EQ(outcomes[rot][i].id, outcomes[0][i].id) << "rotation " << rot;
      EXPECT_EQ(outcomes[rot][i].dist, outcomes[0][i].dist) << "rotation " << rot;
    }
  }
}

}  // namespace
}  // namespace psb
