// Tests for the SR-tree CPU baseline.
#include <gtest/gtest.h>

#include "srtree/srtree.hpp"
#include "srtree/srtree_knn.hpp"
#include "test_util.hpp"

namespace psb::srtree {
namespace {

TEST(SRTree, CapacitiesDeriveFromPageSize) {
  const PointSet points = test::small_clustered(64, 100, 1);
  const SRTree tree(&points);
  // 8 KB page, 64 dims: internal entry = 4 + (193)*4 + 4 = 780 B -> ~10;
  // leaf entry = 256 + 4 = 260 B -> ~31.
  EXPECT_GE(tree.internal_capacity(), 8u);
  EXPECT_LE(tree.internal_capacity(), 12u);
  EXPECT_GE(tree.leaf_capacity(), 28u);
  EXPECT_LE(tree.leaf_capacity(), 33u);
}

TEST(SRTree, ValidStructureAcrossDims) {
  for (const std::size_t dims : {2u, 4u, 16u, 64u}) {
    const PointSet points = test::small_clustered(dims, 1500, dims * 3);
    const SRTree tree(&points);
    tree.validate();
    const auto s = tree.stats();
    EXPECT_GT(s.leaves, 1u);
    EXPECT_GT(s.leaf_utilization, 0.2);
  }
}

TEST(SRTree, KnnMatchesReference) {
  const PointSet points = test::small_clustered(8, 2500, 71);
  const SRTree tree(&points);
  const PointSet queries = test::random_queries(8, 20, 72);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto r = knn_query(tree, queries[q], 16);
    const auto expected = test::reference_knn_distances(points, queries[q], 16);
    test::expect_knn_matches(r.neighbors, expected, "srtree");
  }
}

TEST(SRTree, CombinedMindistIsTighterOrEqual) {
  // The SR-tree's reason to exist: max(sphere, rect) dominates both bounds.
  const PointSet points = test::small_clustered(4, 800, 73);
  const SRTree tree(&points);
  const PointSet queries = test::random_queries(4, 10, 74);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const Node& root = tree.node(tree.root());
    const Scalar combined = tree.region_mindist(queries[q], root);
    const Scalar sphere_only =
        std::max(Scalar{0}, distance(queries[q], root.centroid) - root.radius);
    const Scalar rect_only = mindist(queries[q], root.rect);
    EXPECT_GE(combined + 1e-5F, sphere_only);
    EXPECT_GE(combined + 1e-5F, rect_only);
  }
}

TEST(SRTree, BatchReportsTimeAndBytes) {
  const PointSet points = test::small_clustered(4, 2000, 75);
  const SRTree tree(&points);
  const PointSet queries = test::random_queries(4, 25, 76);
  const CpuBatchResult r = knn_batch(tree, queries, 8);
  EXPECT_EQ(r.queries.size(), 25u);
  // wall_ms is measured host time: on a coarse clock a fast batch can
  // legitimately measure 0.0, so only the deterministic counters are
  // required to be positive; the wall clock just has to be consistent.
  EXPECT_GE(r.wall_ms, 0.0);
  EXPECT_NEAR(r.avg_query_ms * 25, r.wall_ms, 1e-9);
  EXPECT_GT(r.stats.nodes_visited, 0u);
  EXPECT_GT(r.accessed_bytes, 0u);
  EXPECT_EQ(r.accessed_bytes, r.stats.nodes_visited * tree.page_bytes());
}

TEST(SRTree, KnnWithKGreaterThanN) {
  const PointSet points = test::small_clustered(3, 12, 77);
  const SRTree tree(&points);
  const auto r = knn_query(tree, std::vector<Scalar>{0, 0, 0}, 99);
  EXPECT_EQ(r.neighbors.size(), 12u);
}

TEST(SRTree, DuplicatePoints) {
  PointSet points(2);
  for (int i = 0; i < 300; ++i) points.append(std::vector<Scalar>{1, 2});
  const SRTree tree(&points);
  tree.validate();
  const auto r = knn_query(tree, std::vector<Scalar>{1, 2}, 10);
  ASSERT_EQ(r.neighbors.size(), 10u);
  for (const auto& e : r.neighbors) EXPECT_FLOAT_EQ(e.dist, 0.0F);
}

TEST(SRTree, Preconditions) {
  PointSet empty_set(2);
  EXPECT_THROW(SRTree tree_over_empty(&empty_set), InvalidArgument);
  const PointSet points = test::small_clustered(2, 10, 79);
  SRTree::Options opts;
  opts.page_bytes = 16;  // too small for any entry
  EXPECT_THROW(SRTree(&points, opts), InvalidArgument);
}

TEST(SRTree, AccessesFewerBytesThanGpuSsTreeWouldButMoreTime) {
  // Fig. 3's qualitative relationship is exercised in the integration test;
  // here we only pin the byte accounting definition.
  const PointSet points = test::small_clustered(16, 3000, 81);
  const SRTree tree(&points);
  const PointSet queries = test::random_queries(16, 10, 82);
  const CpuBatchResult r = knn_batch(tree, queries, 32);
  EXPECT_GT(r.accessed_mb(), 0.0);
  EXPECT_LT(r.accessed_mb(), points.byte_size() * 10.0 / 1e6);
}

}  // namespace
}  // namespace psb::srtree
