// Property-based correctness battery for the dual-tree join engine.
//
// Each seeded trial draws a random configuration — dimensionality, k (often
// past n-1), dataset shape (including duplicate-coordinate palettes where
// every distance ties), arena layout, thread count — and asserts the dual
// pair-pruning walk is *bit-identical* to the exhaustive O(n*m) join oracle:
// same ids, same float distances, same order. Every kernel computes point
// distances with the same double-accumulate arithmetic as psb::distance, so
// exact equality is the contract, not an approximation; the per-query
// confirm step of the pair pruning (see docs/join.md) is what keeps that
// true on adversarially tied data.
#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/geometry.hpp"
#include "common/points.hpp"
#include "common/rng.hpp"
#include "join/join_engine.hpp"
#include "sstree/builders.hpp"
#include "test_util.hpp"

namespace psb {
namespace {

/// Exhaustive join oracle under the repository's (dist, id) tie order:
/// the k nearest source points to `q`, skipping `skip` (kInvalidPoint = none).
std::vector<KnnHeap::Entry> oracle_join(const PointSet& data, std::span<const Scalar> q,
                                        std::size_t k, PointId skip) {
  KnnHeap heap(std::max<std::size_t>(k, 1));
  for (std::size_t i = 0; i < data.size(); ++i) {
    const PointId id = static_cast<PointId>(i);
    if (id == skip) continue;
    heap.offer(distance(q, data[i]), id);
  }
  return heap.sorted();
}

void expect_bit_identical(const std::vector<KnnHeap::Entry>& got,
                          const std::vector<KnnHeap::Entry>& want, std::uint64_t trial,
                          std::size_t query) {
  ASSERT_EQ(got.size(), want.size()) << "trial " << trial << " query " << query;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id)
        << "trial " << trial << " query " << query << " rank " << i;
    EXPECT_EQ(got[i].dist, want[i].dist)  // exact float equality, not NEAR
        << "trial " << trial << " query " << query << " rank " << i;
  }
}

/// Random dataset mixing three shapes: clustered, uniform, and duplicate-heavy
/// (every point drawn from a tiny palette, so distance ties are everywhere).
PointSet random_dataset(Rng& rng, std::size_t dims, std::size_t n) {
  const std::uint64_t shape = rng.next_below(3);
  PointSet out(dims);
  out.reserve(n);
  std::vector<Scalar> p(dims);
  if (shape == 2) {
    const std::size_t palette_size = 1 + rng.next_below(5);
    std::vector<std::vector<Scalar>> palette(palette_size, std::vector<Scalar>(dims));
    for (auto& pal : palette) {
      for (auto& v : pal) v = static_cast<Scalar>(rng.uniform(0.0, 100.0));
    }
    for (std::size_t i = 0; i < n; ++i) out.append(palette[rng.next_below(palette_size)]);
    return out;
  }
  const double extent = shape == 0 ? 1000.0 : 50.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& v : p) v = static_cast<Scalar>(rng.uniform(0.0, extent));
    out.append(p);
  }
  return out;
}

constexpr engine::NodeLayout kLayouts[] = {
    engine::NodeLayout::kPointer,
    engine::NodeLayout::kSnapshot,
    engine::NodeLayout::kImplicit,
};

join::JoinOptions random_options(Rng& rng, std::uint64_t trial, std::size_t n) {
  join::JoinOptions jo;
  // k regularly reaches past n-1 (and past n), so the oracle's "return every
  // admissible point" clamp is exercised constantly.
  jo.k = 1 + rng.next_below(n + 4);
  jo.variant = join::JoinVariant::kDual;
  jo.engine.gpu.k = jo.k;
  jo.engine.layout = kLayouts[trial % std::size(kLayouts)];
  jo.engine.num_threads = 1 + rng.next_below(3);
  return jo;
}

void run_allknn_trial(std::uint64_t trial) {
  Rng rng(0x10151u * 1000003u + trial);
  const std::size_t dims = 1 + rng.next_below(6);  // 1..6
  const std::size_t n = 1 + rng.next_below(150);   // 1..150, incl. degenerate
  const PointSet data = random_dataset(rng, dims, n);

  join::JoinOptions jo = random_options(rng, trial, n);
  jo.include_self = rng.next_below(4) == 0;

  const std::size_t degree = 4 + rng.next_below(29);  // 4..32
  const sstree::BuildOutput built = sstree::build_kmeans(data, degree, {});
  join::JoinEngine eng(built.tree, jo);
  const knn::BatchResult res = eng.all_knn();

  ASSERT_EQ(res.queries.size(), n);
  EXPECT_TRUE(res.all_ok()) << "trial " << trial;
  for (std::size_t q = 0; q < n; ++q) {
    const PointId skip = jo.include_self ? kInvalidPoint : static_cast<PointId>(q);
    std::vector<KnnHeap::Entry> want = oracle_join(data, data[q], jo.k, skip);
    expect_bit_identical(res.queries[q].neighbors, want, trial, q);
  }
}

void run_knn_join_trial(std::uint64_t trial) {
  Rng rng(0x70171u * 1000003u + trial);
  const std::size_t dims = 1 + rng.next_below(6);
  const std::size_t n = 1 + rng.next_below(120);
  const PointSet data = random_dataset(rng, dims, n);
  // Targets down to zero: the empty join must return an empty batch.
  const std::size_t m = rng.next_below(61);
  PointSet targets(dims);
  std::vector<Scalar> p(dims);
  for (std::size_t i = 0; i < m; ++i) {
    if (rng.next_below(3) == 0) {
      targets.append(data[rng.next_below(n)]);  // on-point targets: exact ties
    } else {
      for (auto& v : p) v = static_cast<Scalar>(rng.uniform(-50.0, 1050.0));
      targets.append(p);
    }
  }

  const join::JoinOptions jo = random_options(rng, trial, n);
  const std::size_t degree = 4 + rng.next_below(29);
  const sstree::BuildOutput built = sstree::build_kmeans(data, degree, {});
  join::JoinEngine eng(built.tree, jo);
  const knn::BatchResult res = eng.knn_join(targets);

  ASSERT_EQ(res.queries.size(), m);
  EXPECT_TRUE(res.all_ok()) << "trial " << trial;
  for (std::size_t q = 0; q < m; ++q) {
    std::vector<KnnHeap::Entry> want = oracle_join(data, targets[q], jo.k, kInvalidPoint);
    expect_bit_identical(res.queries[q].neighbors, want, trial, q);
  }
}

TEST(JoinPropertyTest, AllKnnSeededTrialsMatchBruteOracle) {
  for (std::uint64_t trial = 0; trial < 140; ++trial) run_allknn_trial(trial);
}

TEST(JoinPropertyTest, KnnJoinSeededTrialsMatchBruteOracle) {
  for (std::uint64_t trial = 140; trial < 210; ++trial) run_knn_join_trial(trial);
}

TEST(JoinPropertyTest, SingleAndBruteVariantsMatchTheSameOracle) {
  // The fallback rungs of the degradation ladder are exact in their own
  // right — the property the dual walk's recovery correctness rests on.
  for (std::uint64_t trial = 0; trial < 24; ++trial) {
    Rng rng(0xABCD0u + trial * 7919u);
    const std::size_t dims = 1 + rng.next_below(5);
    const std::size_t n = 1 + rng.next_below(90);
    const PointSet data = random_dataset(rng, dims, n);
    join::JoinOptions jo = random_options(rng, trial, n);
    jo.variant = trial % 2 == 0 ? join::JoinVariant::kSingle : join::JoinVariant::kBrute;
    jo.include_self = rng.next_below(4) == 0;
    const sstree::BuildOutput built = sstree::build_kmeans(data, 4 + rng.next_below(13), {});
    join::JoinEngine eng(built.tree, jo);
    const knn::BatchResult res = eng.all_knn();
    ASSERT_EQ(res.queries.size(), n);
    for (std::size_t q = 0; q < n; ++q) {
      const PointId skip = jo.include_self ? kInvalidPoint : static_cast<PointId>(q);
      expect_bit_identical(res.queries[q].neighbors, oracle_join(data, data[q], jo.k, skip),
                           trial, q);
    }
  }
}

TEST(JoinPropertyTest, KPastDatasetSizeReturnsEveryAdmissiblePoint) {
  // k >= n-1 self-joins: the list is every other point, in (dist, id) order.
  for (const std::size_t n : {1u, 2u, 3u, 7u, 33u}) {
    Rng rng(40'000 + n);
    const PointSet data = random_dataset(rng, 3, n);
    for (const bool include_self : {false, true}) {
      join::JoinOptions jo;
      jo.k = n + 5;
      jo.engine.gpu.k = jo.k;
      jo.include_self = include_self;
      const sstree::BuildOutput built = sstree::build_kmeans(data, 4, {});
      join::JoinEngine eng(built.tree, jo);
      const knn::BatchResult res = eng.all_knn();
      ASSERT_EQ(res.queries.size(), n);
      for (std::size_t q = 0; q < n; ++q) {
        ASSERT_EQ(res.queries[q].neighbors.size(), include_self ? n : n - 1)
            << "n " << n << " query " << q;
        const PointId skip = include_self ? kInvalidPoint : static_cast<PointId>(q);
        expect_bit_identical(res.queries[q].neighbors, oracle_join(data, data[q], jo.k, skip),
                             n, q);
      }
    }
  }
}

TEST(JoinPropertyTest, SelfExclusionDropsExactlyTheQueryRow) {
  // On an all-duplicates palette every cross distance is 0, so the only
  // difference exclusion can make is the id set: each query's own id must be
  // absent with include_self=false and present with include_self=true.
  PointSet data(2);
  const std::vector<Scalar> p = {42.0F, 17.0F};
  for (int i = 0; i < 9; ++i) data.append(p);
  const sstree::BuildOutput built = sstree::build_kmeans(data, 3, {});
  for (const bool include_self : {false, true}) {
    join::JoinOptions jo;
    jo.k = 4;
    jo.engine.gpu.k = jo.k;
    jo.include_self = include_self;
    join::JoinEngine eng(built.tree, jo);
    const knn::BatchResult res = eng.all_knn();
    for (std::size_t q = 0; q < data.size(); ++q) {
      const auto& nb = res.queries[q].neighbors;
      ASSERT_EQ(nb.size(), 4u);
      const PointId skip = include_self ? kInvalidPoint : static_cast<PointId>(q);
      expect_bit_identical(nb, oracle_join(data, data[q], jo.k, skip), include_self, q);
      for (const auto& e : nb) {
        EXPECT_EQ(e.dist, 0.0F);
        if (!include_self) {
          EXPECT_NE(e.id, static_cast<PointId>(q));
        }
      }
    }
  }
}

TEST(JoinPropertyTest, AdversariallyTiedDistancesStayExact) {
  // Satellite regression for exact-tie soundness: coordinates at a
  // magnitude where one float ULP is 2.0, so every rounding slip in the
  // per-query MAXDIST tightening (its two-ULP inflation plus tighten's one)
  // or in a bounding sphere that under-covers its contents (the cover-snap
  // in the mbs builders) would drop or reorder a tied candidate. Every pair
  // prune is confirmed per query — the dual walk must stay bit-exact.
  constexpr Scalar kBase = 16777216.0F;  // 2^24: ULP(kBase) == 2.0
  for (std::uint64_t trial = 0; trial < 30; ++trial) {
    Rng rng(0xF10A7u + trial * 104729u);
    const std::size_t dims = 1 + rng.next_below(3);
    const std::size_t n = 2 + rng.next_below(79);
    const Scalar ulp = 2.0F;
    PointSet data(dims);
    std::vector<Scalar> p(dims);
    for (std::size_t i = 0; i < n; ++i) {
      for (auto& v : p) {
        // Each coordinate a few ULPs around 2^24: adjacent representable
        // floats, exact duplicates, and near-misses all mixed together.
        v = kBase + ulp * static_cast<Scalar>(rng.next_below(4));
      }
      data.append(p);
    }
    join::JoinOptions jo;
    jo.k = 1 + rng.next_below(n + 2);
    jo.engine.gpu.k = jo.k;
    jo.engine.layout = kLayouts[trial % std::size(kLayouts)];
    const sstree::BuildOutput built = sstree::build_kmeans(data, 4 + rng.next_below(9), {});
    join::JoinEngine eng(built.tree, jo);
    const knn::BatchResult res = eng.all_knn();
    ASSERT_EQ(res.queries.size(), n);
    for (std::size_t q = 0; q < n; ++q) {
      expect_bit_identical(res.queries[q].neighbors,
                           oracle_join(data, data[q], jo.k, static_cast<PointId>(q)), trial, q);
    }
  }
}

}  // namespace
}  // namespace psb
