// Metamorphic battery for the streaming serving front-end. Three families of
// transformations with provable invariants on the virtual clock:
//
//   * Time scaling — multiplying every arrival time, the deadline, the flush
//     horizon and the dispatch overhead by an integer c (and setting
//     service_time_scale = c) is a pure change of time units: per-query
//     answers, flush cohort composition, shed decisions and every counter are
//     invariant, and every latency/completion scales by exactly c.
//   * Capacity-one degeneration — a buffered front-end whose buffers hold one
//     query flushes on every admission, which must be bit-identical (whole
//     report, including counters and the JSON export) to naive per-arrival
//     dispatch, and both bit-identical to the offline BatchEngine answers.
//   * Stream merging — serving the time-ordered merge of two streams answers
//     exactly the union of both streams' queries.
//
// Plus the determinism regression the obs export hangs off: same seed and
// profile ⇒ byte-identical stream JSON (latency histogram included) across
// repeated runs and across backend thread counts.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/points.hpp"
#include "engine/batch_engine.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "serve/arrivals.hpp"
#include "serve/streaming_engine.hpp"
#include "sstree/builders.hpp"
#include "test_util.hpp"

namespace psb {
namespace {

serve::ArrivalSpec fixture_spec(std::uint64_t seed, double rate) {
  serve::ArrivalSpec spec;
  spec.rate_qps = rate;
  spec.duration_s = 0.05;
  spec.diurnal_amplitude = 0.5;
  spec.diurnal_period_s = 0.02;
  spec.burst_rate_per_s = 60.0;
  spec.burst_size = 12;
  spec.seed = seed * 7919 + 1;
  return spec;
}

struct Fixture {
  PointSet data;
  sstree::BuildOutput built;
  serve::ArrivalStream stream;

  explicit Fixture(std::uint64_t seed, double rate = 2500.0)
      : data(test::small_clustered(4, 160, seed)),
        built(sstree::build_kmeans(data, 16, {})),
        stream(serve::generate_arrivals(data, fixture_spec(seed, rate))) {}
};

serve::StreamingOptions base_options() {
  serve::StreamingOptions so;
  so.engine.gpu.k = 8;
  so.engine.use_snapshot = true;
  so.engine.reorder_queries = true;
  so.buffer_capacity = 8;
  so.engine.warp_queries = 8;
  so.deadline_us = 6000;
  so.flush_horizon_us = 1000;
  so.admission_queue_bound = 48;  // tight enough that some trials shed
  so.cell_bits = 2;
  so.dispatch_overhead_us = 150;
  return so;
}

void expect_same_neighbors(const std::vector<KnnHeap::Entry>& a,
                           const std::vector<KnnHeap::Entry>& b, std::size_t arrival) {
  ASSERT_EQ(a.size(), b.size()) << "arrival " << arrival;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << "arrival " << arrival << " rank " << i;
    EXPECT_EQ(a[i].dist, b[i].dist) << "arrival " << arrival << " rank " << i;
  }
}

TEST(StreamMetamorphicTest, IntegerTimeScalingLeavesResultsAndCohortsInvariant) {
  for (const std::uint64_t c : {std::uint64_t{2}, std::uint64_t{5}, std::uint64_t{10}}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const Fixture fx(seed);
      if (fx.stream.size() == 0) continue;
      const serve::StreamingOptions so = base_options();

      serve::StreamingEngine base_eng(fx.built.tree, so);
      const serve::StreamingReport base = base_eng.run(fx.stream);

      serve::StreamingOptions scaled = so;
      scaled.deadline_us *= c;
      scaled.flush_horizon_us *= c;
      scaled.dispatch_overhead_us *= c;
      scaled.service_time_scale *= c;
      serve::StreamingEngine scaled_eng(fx.built.tree, scaled);
      const serve::StreamingReport rep = scaled_eng.run(serve::scale_stream(fx.stream, c));

      // Counters and cohort structure: invariant.
      EXPECT_EQ(rep.admitted, base.admitted) << "c=" << c << " seed=" << seed;
      EXPECT_EQ(rep.shed, base.shed) << "c=" << c << " seed=" << seed;
      EXPECT_EQ(rep.flushes, base.flushes) << "c=" << c << " seed=" << seed;
      EXPECT_EQ(rep.flush_full, base.flush_full) << "c=" << c << " seed=" << seed;
      EXPECT_EQ(rep.flush_deadline, base.flush_deadline) << "c=" << c << " seed=" << seed;
      EXPECT_EQ(rep.flush_drain, base.flush_drain) << "c=" << c << " seed=" << seed;
      EXPECT_EQ(rep.deadline_misses, base.deadline_misses) << "c=" << c << " seed=" << seed;
      EXPECT_EQ(rep.max_queue_depth, base.max_queue_depth) << "c=" << c << " seed=" << seed;
      EXPECT_EQ(rep.accessed_bytes, base.accessed_bytes) << "c=" << c << " seed=" << seed;
      // Times: scaled by exactly c.
      EXPECT_EQ(rep.span_us, base.span_us * c) << "c=" << c << " seed=" << seed;

      ASSERT_EQ(rep.queries.size(), base.queries.size());
      for (std::size_t i = 0; i < rep.queries.size(); ++i) {
        const serve::StreamedQuery& s = rep.queries[i];
        const serve::StreamedQuery& b = base.queries[i];
        EXPECT_EQ(s.shed, b.shed) << "arrival " << i;
        EXPECT_EQ(s.flush_id, b.flush_id) << "arrival " << i;  // cohort composition
        EXPECT_EQ(s.cell, b.cell) << "arrival " << i;
        EXPECT_EQ(s.deadline_missed, b.deadline_missed) << "arrival " << i;
        EXPECT_EQ(s.status, b.status) << "arrival " << i;
        EXPECT_EQ(s.latency_us, b.latency_us * c) << "arrival " << i;
        expect_same_neighbors(s.neighbors, b.neighbors, i);
      }
    }
  }
}

TEST(StreamMetamorphicTest, CapacityOneDegradesToNaivePerArrivalDispatch) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Fixture fx(seed);
    if (fx.stream.size() == 0) continue;

    serve::StreamingOptions cap1 = base_options();
    cap1.mode = serve::DispatchMode::kBuffered;
    cap1.buffer_capacity = 1;
    serve::StreamingOptions naive = cap1;
    naive.mode = serve::DispatchMode::kNaive;

    serve::StreamingEngine cap1_eng(fx.built.tree, cap1);
    const serve::StreamingReport a = cap1_eng.run(fx.stream);
    serve::StreamingEngine naive_eng(fx.built.tree, naive);
    const serve::StreamingReport b = naive_eng.run(fx.stream);

    // The whole report — counters, latencies, histogram — is bit-identical,
    // which the deterministic JSON export captures in one comparison.
    EXPECT_EQ(serve::streaming_report_to_json(a), serve::streaming_report_to_json(b))
        << "seed " << seed;

    // And both equal the offline batch answers for every admitted arrival.
    const knn::BatchResult offline =
        engine::BatchEngine(fx.built.tree, cap1.engine).run(fx.stream.queries);
    ASSERT_EQ(a.queries.size(), b.queries.size());
    for (std::size_t i = 0; i < a.queries.size(); ++i) {
      ASSERT_EQ(a.queries[i].shed, b.queries[i].shed) << "arrival " << i;
      if (a.queries[i].shed) continue;
      expect_same_neighbors(a.queries[i].neighbors, b.queries[i].neighbors, i);
      expect_same_neighbors(a.queries[i].neighbors, offline.queries[i].neighbors, i);
    }
  }
}

TEST(StreamMetamorphicTest, MergedStreamsAnswerTheUnion) {
  const Fixture fa(21, 1200.0);
  const Fixture fb(22, 900.0);
  // Both streams query the same dataset/tree (fa's); fb contributes only its
  // arrival process, re-pointed at fa's data so dimensions match.
  serve::ArrivalSpec bspec;
  bspec.rate_qps = 900.0;
  bspec.duration_s = 0.05;
  bspec.burst_rate_per_s = 40.0;
  bspec.burst_size = 8;
  bspec.seed = 4242;
  const serve::ArrivalStream sb = serve::generate_arrivals(fa.data, bspec);
  const serve::ArrivalStream& sa = fa.stream;
  const serve::ArrivalStream merged = serve::merge_streams(sa, sb);

  ASSERT_EQ(merged.size(), sa.size() + sb.size());
  EXPECT_TRUE(std::is_sorted(merged.time_us.begin(), merged.time_us.end()));

  // Reconstruct the documented merge order (time-ordered, `a` wins ties) and
  // verify the union: every arrival of both input streams appears exactly
  // once, with its coordinates intact.
  std::vector<std::pair<bool, std::size_t>> origin;  // (from_a, index)
  {
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < sa.size() || j < sb.size()) {
      const bool take_a =
          j >= sb.size() || (i < sa.size() && sa.time_us[i] <= sb.time_us[j]);
      origin.emplace_back(take_a, take_a ? i++ : j++);
    }
  }
  for (std::size_t m = 0; m < merged.size(); ++m) {
    const auto& [from_a, idx] = origin[m];
    const serve::ArrivalStream& src = from_a ? sa : sb;
    ASSERT_EQ(merged.time_us[m], src.time_us[idx]) << "arrival " << m;
    const std::span<const Scalar> got = merged.queries[m];
    const std::span<const Scalar> want = src.queries[idx];
    for (std::size_t d = 0; d < got.size(); ++d) {
      ASSERT_EQ(got[d], want[d]) << "arrival " << m << " dim " << d;
    }
  }

  // Serving the merge (unbounded admission) answers every query of the union
  // with its offline batch answer.
  serve::StreamingOptions so = base_options();
  so.admission_queue_bound = 0;
  serve::StreamingEngine eng(fa.built.tree, so);
  const serve::StreamingReport rep = eng.run(merged);
  EXPECT_EQ(rep.answered, merged.size());
  EXPECT_EQ(rep.shed, 0u);
  const knn::BatchResult offline =
      engine::BatchEngine(fa.built.tree, so.engine).run(merged.queries);
  for (std::size_t i = 0; i < rep.queries.size(); ++i) {
    expect_same_neighbors(rep.queries[i].neighbors, offline.queries[i].neighbors, i);
  }
}

TEST(StreamMetamorphicTest, JsonExportIsByteIdenticalAcrossRunsAndThreadCounts) {
  const Fixture fx(33);
  ASSERT_GT(fx.stream.size(), 0u);

  std::string reference;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    serve::StreamingOptions so = base_options();
    so.engine.num_threads = threads;
    for (int run = 0; run < 2; ++run) {
      serve::StreamingEngine eng(fx.built.tree, so);
      const std::string json = serve::streaming_report_to_json(eng.run(fx.stream));
      if (reference.empty()) {
        reference = json;
      } else {
        EXPECT_EQ(json, reference) << "threads=" << threads << " run=" << run;
      }
    }
  }
  // The export carries the full latency histogram — spot-check the schema.
  EXPECT_NE(reference.find("\"schema\": \"psb.stream.v1\""), std::string::npos);
  EXPECT_NE(reference.find("stream.latency_us.p99"), std::string::npos);
}

TEST(StreamMetamorphicTest, RegistryCountersAreDeterministicAcrossRuns) {
  // serve.* counters are part of the deterministic observable surface: two
  // identical runs add identical deltas, so a reset + run + export cycle is
  // byte-stable (the regression harness diffs exactly this).
  const Fixture fx(44);
  ASSERT_GT(fx.stream.size(), 0u);
  const serve::StreamingOptions so = base_options();

  std::string first;
  for (int run = 0; run < 2; ++run) {
    obs::Registry::global().reset();
    serve::StreamingEngine eng(fx.built.tree, so);
    (void)eng.run(fx.stream);
    const std::string json = obs::registry_to_json(obs::Registry::global().snapshot());
    if (run == 0) {
      first = json;
      EXPECT_NE(first.find("serve.flushes"), std::string::npos);
      EXPECT_NE(first.find("serve.answered"), std::string::npos);
    } else {
      EXPECT_EQ(json, first);
    }
  }
}

}  // namespace
}  // namespace psb
