// Contract tests for src/replica/: the group partitioner, the router's
// failover / eviction / hedging semantics under injected faults, the R = 1
// collapse onto the legacy single-server streaming model (bit-identity), the
// degradation ladder's never-silent guarantee, and run-to-run determinism of
// the replicated JSON export.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "engine/batch_engine.hpp"
#include "fault/fault.hpp"
#include "fault/sites.hpp"
#include "knn/brute_force.hpp"
#include "replica/replica.hpp"
#include "serve/arrivals.hpp"
#include "serve/streaming_engine.hpp"
#include "sstree/builders.hpp"
#include "test_util.hpp"

namespace psb {
namespace {

// ---------------------------------------------------------------------------
// group_for_cell
// ---------------------------------------------------------------------------

TEST(GroupForCell, MonotoneContiguousAndComplete) {
  const int key_bits = 16;
  const std::size_t groups = 5;
  std::size_t prev = 0;
  std::vector<bool> seen(groups, false);
  for (std::uint64_t cell = 0; cell < (1u << key_bits); ++cell) {
    const std::size_t g = replica::group_for_cell(cell, key_bits, groups);
    ASSERT_LT(g, groups);
    ASSERT_GE(g, prev);  // monotone in the cell key -> contiguous ranges
    prev = g;
    seen[g] = true;
  }
  for (std::size_t g = 0; g < groups; ++g) EXPECT_TRUE(seen[g]) << "empty group " << g;
}

TEST(GroupForCell, WideKeysUseTheTopBits) {
  // CellRouter::route hands out MSB-aligned 64-bit keys; the split must be
  // monotone across the whole word without overflowing.
  const std::uint64_t top = ~std::uint64_t{0};
  EXPECT_EQ(replica::group_for_cell(0, 64, 4), 0u);
  EXPECT_EQ(replica::group_for_cell(top, 64, 4), 3u);
  EXPECT_EQ(replica::group_for_cell(top / 2, 64, 4), 1u);
  // Degenerate configurations collapse to group 0.
  EXPECT_EQ(replica::group_for_cell(top, 0, 4), 0u);
  EXPECT_EQ(replica::group_for_cell(top, 64, 1), 0u);
}

// ---------------------------------------------------------------------------
// Router semantics on a hand-driven request sequence
// ---------------------------------------------------------------------------

replica::ReplicaRouter::Request plain_request(std::uint64_t now_us, std::uint64_t service_us,
                                              std::span<const unsigned char> reply = {}) {
  replica::ReplicaRouter::Request rq;
  rq.group = 0;
  rq.now_us = now_us;
  rq.service_us = service_us;
  rq.overhead_us = 100;
  rq.reply = reply;
  return rq;
}

TEST(ReplicaRouter, CleanDispatchMatchesSingleServerRecurrence) {
  replica::ReplicaOptions opts;
  opts.replicas = 1;
  opts.groups = 1;
  replica::ReplicaRouter router(opts);
  // One server: flush at t starts at max(t, busy) and occupies
  // overhead + service — the legacy StreamingEngine queueing model.
  const auto oc1 = router.dispatch(plain_request(1000, 400));
  ASSERT_TRUE(oc1.served);
  EXPECT_EQ(oc1.completion_us, 1000u + 100u + 400u);
  const auto oc2 = router.dispatch(plain_request(1100, 200));  // queues behind oc1
  ASSERT_TRUE(oc2.served);
  EXPECT_EQ(oc2.completion_us, 1500u + 100u + 200u);
  const auto oc3 = router.dispatch(plain_request(5000, 100));  // idle server
  ASSERT_TRUE(oc3.served);
  EXPECT_EQ(oc3.completion_us, 5000u + 100u + 100u);
  EXPECT_EQ(router.stats().dispatches, 3u);
  EXPECT_EQ(router.stats().attempts, 3u);
  EXPECT_EQ(router.stats().failovers, 0u);
}

TEST(ReplicaRouter, CrashFailsOverToSiblingAndRestartsCounted) {
  replica::ReplicaOptions opts;
  opts.replicas = 3;
  opts.groups = 1;
  opts.restart_us = 500;
  replica::ReplicaRouter router(opts);
  fault::InjectionScope scope(
      fault::Spec{std::string(fault::kSiteReplicaCrash), 7, /*trigger=*/0, /*count=*/1});
  const auto oc = router.dispatch(plain_request(0, 300));
  ASSERT_TRUE(oc.served);
  EXPECT_TRUE(oc.failed_over);
  EXPECT_EQ(oc.attempts, 2u);
  EXPECT_EQ(router.stats().crashes, 1u);
  EXPECT_EQ(router.stats().failovers, 1u);
  EXPECT_GT(router.stats().backoff_wait_us, 0u);
  // Far past the restart window the crashed replica is usable again.
  const auto later = router.dispatch(plain_request(10000, 300));
  ASSERT_TRUE(later.served);
  EXPECT_EQ(router.stats().restarts, 1u);
}

TEST(ReplicaRouter, CorruptReplyIsDetectedByCrcAndEvicted) {
  replica::ReplicaOptions opts;
  opts.replicas = 2;
  opts.groups = 1;
  replica::ReplicaRouter router(opts);
  const std::vector<unsigned char> reply = {0x50, 0x53, 0x42, 0x21, 0x00, 0x7F};
  fault::InjectionScope scope(
      fault::Spec{std::string(fault::kSiteReplicaCorruptReply), 21, 0, 1});
  const auto oc = router.dispatch(plain_request(0, 250, reply));
  ASSERT_TRUE(oc.served);  // the sibling re-answered
  EXPECT_TRUE(oc.failed_over);
  EXPECT_EQ(router.stats().corrupt_replies, 1u);
  EXPECT_EQ(router.stats().evictions, 1u);
  EXPECT_EQ(scope.fired(fault::kSiteReplicaCorruptReply), 1u);
}

TEST(ReplicaRouter, ExhaustionReturnsUnservedNeverSilently) {
  replica::ReplicaOptions opts;
  opts.replicas = 2;
  opts.groups = 1;
  opts.max_attempts = 3;
  opts.restart_us = 1000000;  // crashed replicas stay down for the whole test
  replica::ReplicaRouter router(opts);
  fault::InjectionScope scope(
      fault::Spec{std::string(fault::kSiteReplicaCrash), 3, 0, /*count=*/100});
  const auto oc = router.dispatch(plain_request(0, 300));
  EXPECT_FALSE(oc.served);
  EXPECT_GT(oc.completion_us, 0u);  // the caller's fallback starts here
  EXPECT_EQ(router.stats().exhausted, 1u);
}

TEST(ReplicaRouter, MergedLatencyEqualsGroupConcatenation) {
  replica::ReplicaOptions opts;
  opts.replicas = 1;
  opts.groups = 3;
  replica::ReplicaRouter router(opts);
  for (std::uint64_t i = 0; i < 12; ++i) {
    replica::ReplicaRouter::Request rq = plain_request(i * 1000, 100 + 37 * i);
    rq.group = i % 3;
    ASSERT_TRUE(router.dispatch(rq).served);
  }
  obs::Histogram manual;
  for (std::size_t g = 0; g < 3; ++g) manual.merge(router.group_latency(g));
  const obs::Histogram merged = router.merged_latency();
  EXPECT_EQ(merged.count(), manual.count());
  EXPECT_EQ(merged.sum(), manual.sum());
  EXPECT_EQ(merged.percentile(50), manual.percentile(50));
  EXPECT_EQ(merged.count(), 12u);
}

TEST(ReplicaStats, MinusIsFieldWise) {
  replica::ReplicaStats a;
  a.dispatches = 10;
  a.attempts = 14;
  a.hedge_issued = 5;
  replica::ReplicaStats b;
  b.dispatches = 4;
  b.attempts = 6;
  b.hedge_issued = 2;
  const replica::ReplicaStats d = a.minus(b);
  EXPECT_EQ(d.dispatches, 6u);
  EXPECT_EQ(d.attempts, 8u);
  EXPECT_EQ(d.hedge_issued, 3u);
  EXPECT_EQ(d.crashes, 0u);
}

// ---------------------------------------------------------------------------
// StreamingEngine integration
// ---------------------------------------------------------------------------

// The tree keeps a pointer to `data` (SSTree stores const PointSet*), so the
// members are built in declaration order inside the constructor and the
// factory relies on guaranteed copy elision — the Workload is never moved,
// keeping that pointer valid for the test's lifetime.
struct Workload {
  PointSet data;
  sstree::BuildOutput built;
  serve::ArrivalStream stream;

  Workload(std::uint64_t seed, double rate_qps)
      : data(test::small_clustered(4, 220, seed)),
        built(sstree::build_kmeans(data, 16, {})),
        stream(serve::generate_arrivals(data, arrival_spec(seed, rate_qps))) {}

  static serve::ArrivalSpec arrival_spec(std::uint64_t seed, double rate_qps) {
    serve::ArrivalSpec aspec;
    aspec.rate_qps = rate_qps;
    aspec.duration_s = 0.05;
    aspec.burst_rate_per_s = 40.0;
    aspec.burst_size = 8;
    aspec.seed = seed + 1;
    return aspec;
  }
};

Workload make_workload(std::uint64_t seed, double rate_qps = 2000.0) {
  return Workload(seed, rate_qps);
}

serve::StreamingOptions base_options() {
  serve::StreamingOptions so;
  so.engine.algorithm = engine::Algorithm::kPsb;
  so.engine.gpu.k = 8;
  so.engine.use_snapshot = true;
  so.engine.num_threads = 1;
  so.mode = serve::DispatchMode::kBuffered;
  so.buffer_capacity = 8;
  so.engine.warp_queries = 8;
  so.deadline_us = 20000;
  so.flush_horizon_us = 2000;
  so.admission_queue_bound = 0;
  so.cell_bits = 2;
  return so;
}

/// The acceptance bit-identity: one replica, one group, no hedging, no
/// straggling collapses the router onto the legacy single-server model —
/// per-query outcomes and the whole legacy export must match byte for byte.
TEST(ReplicatedStreaming, SingleReplicaIsBitIdenticalToLegacyModel) {
  const Workload w = make_workload(42);
  ASSERT_GT(w.stream.size(), 0u);

  serve::StreamingOptions legacy = base_options();
  serve::StreamingEngine legacy_eng(w.built.tree, legacy);
  const serve::StreamingReport lrep = legacy_eng.run(w.stream);

  serve::StreamingOptions rep = base_options();
  rep.replica.replicas = 1;
  rep.replica.groups = 1;
  serve::StreamingEngine rep_eng(w.built.tree, rep);
  const serve::StreamingReport rrep = rep_eng.run(w.stream);

  EXPECT_FALSE(lrep.replicated);
  EXPECT_TRUE(rrep.replicated);
  ASSERT_EQ(lrep.queries.size(), rrep.queries.size());
  for (std::size_t i = 0; i < lrep.queries.size(); ++i) {
    EXPECT_EQ(lrep.queries[i].latency_us, rrep.queries[i].latency_us) << "arrival " << i;
    EXPECT_EQ(lrep.queries[i].flush_id, rrep.queries[i].flush_id) << "arrival " << i;
    EXPECT_EQ(lrep.queries[i].status, rrep.queries[i].status) << "arrival " << i;
    EXPECT_EQ(lrep.queries[i].cell, rrep.queries[i].cell) << "arrival " << i;
  }
  EXPECT_EQ(lrep.span_us, rrep.span_us);
  EXPECT_EQ(lrep.deadline_misses, rrep.deadline_misses);
  EXPECT_EQ(lrep.p50_us(), rrep.p50_us());
  EXPECT_EQ(lrep.p99_us(), rrep.p99_us());

  // The replicated export is the legacy export plus the .replica.* block:
  // stripping those lines must restore the legacy bytes exactly.
  const std::string ljson = serve::streaming_report_to_json(lrep);
  const std::string rjson = serve::streaming_report_to_json(rrep);
  std::string stripped;
  std::size_t pos = 0;
  while (pos < rjson.size()) {
    std::size_t eol = rjson.find('\n', pos);
    if (eol == std::string::npos) eol = rjson.size() - 1;
    const std::string line = rjson.substr(pos, eol - pos + 1);
    if (line.find(".replica.") == std::string::npos) stripped += line;
    pos = eol + 1;
  }
  EXPECT_EQ(stripped, ljson);
}

TEST(ReplicatedStreaming, DisabledReplicationExportsNoReplicaFields) {
  const Workload w = make_workload(7);
  serve::StreamingEngine eng(w.built.tree, base_options());
  const serve::StreamingReport rep = eng.run(w.stream);
  EXPECT_FALSE(rep.replicated);
  EXPECT_EQ(serve::streaming_report_to_json(rep).find(".replica."), std::string::npos);
}

TEST(ReplicatedStreaming, CrashFailoverKeepsAnswersExactAndCounted) {
  const Workload w = make_workload(11);
  serve::StreamingOptions so = base_options();
  so.replica.replicas = 3;
  so.replica.groups = 2;
  so.replica.restart_us = 2000;

  fault::InjectionScope scope(
      fault::Spec{std::string(fault::kSiteReplicaCrash), 19, /*trigger=*/1, /*count=*/2});
  serve::StreamingEngine eng(w.built.tree, so);
  const serve::StreamingReport rep = eng.run(w.stream);
  ASSERT_GT(scope.fired(fault::kSiteReplicaCrash), 0u);
  EXPECT_GE(rep.replica.crashes, 1u);
  EXPECT_GE(rep.replica.failovers, 1u);

  // Failover must never change an answer: every query matches the offline
  // batch bit for bit.
  const knn::BatchResult offline =
      engine::BatchEngine(w.built.tree, so.engine).run(w.stream.queries);
  for (std::size_t i = 0; i < rep.queries.size(); ++i) {
    ASSERT_EQ(rep.queries[i].neighbors.size(), offline.queries[i].neighbors.size());
    for (std::size_t r = 0; r < rep.queries[i].neighbors.size(); ++r) {
      EXPECT_EQ(rep.queries[i].neighbors[r].id, offline.queries[i].neighbors[r].id);
      EXPECT_EQ(rep.queries[i].neighbors[r].dist, offline.queries[i].neighbors[r].dist);
    }
  }
}

TEST(ReplicatedStreaming, ExhaustionFallsBackToFlaggedExactBruteForce) {
  const Workload w = make_workload(23);
  serve::StreamingOptions so = base_options();
  so.replica.replicas = 2;
  so.replica.groups = 1;
  so.replica.max_attempts = 3;
  so.replica.restart_us = 100000000;  // nobody comes back within the stream

  fault::InjectionScope scope(
      fault::Spec{std::string(fault::kSiteReplicaCrash), 5, 0, /*count=*/1000000});
  serve::StreamingEngine eng(w.built.tree, so);
  const serve::StreamingReport rep = eng.run(w.stream);
  ASSERT_GT(scope.fired(fault::kSiteReplicaCrash), 0u);
  EXPECT_GE(rep.replica.exhausted, 1u);
  EXPECT_GT(rep.degraded, 0u);

  // Bottom of the ladder: flagged, and still exact against the truth.
  const knn::GpuKnnOptions gpu = so.engine.gpu;
  const knn::BatchResult truth = knn::brute_force_batch(w.data, w.stream.queries, gpu);
  bool saw_flagged = false;
  for (std::size_t i = 0; i < rep.queries.size(); ++i) {
    if (rep.queries[i].status == knn::QueryStatus::kDegradedFallback) saw_flagged = true;
    EXPECT_NE(rep.queries[i].status, knn::QueryStatus::kDeadlinePartial);
    ASSERT_EQ(rep.queries[i].neighbors.size(), truth.queries[i].neighbors.size());
    for (std::size_t r = 0; r < rep.queries[i].neighbors.size(); ++r) {
      EXPECT_EQ(rep.queries[i].neighbors[r].id, truth.queries[i].neighbors[r].id);
      EXPECT_EQ(rep.queries[i].neighbors[r].dist, truth.queries[i].neighbors[r].dist);
    }
  }
  EXPECT_TRUE(saw_flagged);
}

TEST(ReplicatedStreaming, HedgingCutsTheTailUnderStragglersAndAccounts) {
  const Workload w = make_workload(31, /*rate_qps=*/1200.0);
  serve::StreamingOptions so = base_options();
  so.deadline_us = 6000;
  so.flush_horizon_us = 2000;
  so.replica.replicas = 3;
  so.replica.groups = 2;
  so.replica.straggle_pct = 10;
  so.replica.straggle_multiplier = 8;
  so.replica.health_seed = 77;

  serve::StreamingEngine unhedged(w.built.tree, so);
  const serve::StreamingReport urep = unhedged.run(w.stream);

  so.replica.hedge = true;
  so.replica.hedge_percentile = 90.0;
  so.replica.hedge_warmup = 4;
  serve::StreamingEngine hedged(w.built.tree, so);
  const serve::StreamingReport hrep = hedged.run(w.stream);

  EXPECT_GT(urep.replica.straggles, 0u);
  EXPECT_GT(hrep.replica.hedge_issued, 0u);
  EXPECT_EQ(hrep.replica.hedge_issued, hrep.replica.hedge_won + hrep.replica.hedge_wasted);
  EXPECT_GT(hrep.replica.hedge_won, 0u);
  EXPECT_EQ(urep.replica.hedge_issued, 0u);
  // The gate property: hedging must not worsen the tail under the seeded
  // straggler profile (the bench gate pins the strict < 1.0 ratio).
  EXPECT_LE(hrep.p99_us(), urep.p99_us());
}

TEST(ReplicatedStreaming, ReplicatedExportIsDeterministicRunToRun) {
  const Workload w = make_workload(57);
  serve::StreamingOptions so = base_options();
  so.replica.replicas = 3;
  so.replica.groups = 2;
  so.replica.straggle_pct = 15;
  so.replica.hedge = true;
  so.replica.hedge_warmup = 4;

  serve::StreamingEngine a(w.built.tree, so);
  serve::StreamingEngine b(w.built.tree, so);
  const std::string ja = serve::streaming_report_to_json(a.run(w.stream));
  const std::string jb = serve::streaming_report_to_json(b.run(w.stream));
  EXPECT_EQ(ja, jb);
  EXPECT_NE(ja.find(".replica.dispatches"), std::string::npos);
}

}  // namespace
}  // namespace psb
