// Tests for the §II-A stackless baselines (kd-restart, skip pointers) and
// the radius-query extension: exactness first, then the structural
// relationships the strategy comparison relies on.
#include <gtest/gtest.h>

#include <tuple>

#include "knn/best_first.hpp"
#include "knn/psb.hpp"
#include "knn/radius.hpp"
#include "knn/stackless_baselines.hpp"
#include "sstree/builders.hpp"
#include "test_util.hpp"

namespace psb::knn {
namespace {

class StacklessExactness
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(StacklessExactness, RestartAndSkipPointerMatchReference) {
  const auto [dims, k, degree] = GetParam();
  const PointSet points = test::small_clustered(dims, 1500, dims * 41 + k);
  const PointSet queries = test::random_queries(dims, 10, dims * 43 + k);
  const sstree::SSTree tree = sstree::build_hilbert(points, degree).tree;

  GpuKnnOptions opts;
  opts.k = k;
  const BatchResult restart_r = restart_batch(tree, queries, opts);
  const BatchResult skip_r = skip_pointer_batch(tree, queries, opts);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto expected = test::reference_knn_distances(points, queries[q], k);
    test::expect_knn_matches(restart_r.queries[q].neighbors, expected, "restart");
    test::expect_knn_matches(skip_r.queries[q].neighbors, expected, "skip-pointer");
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, StacklessExactness,
                         ::testing::Values(std::make_tuple(2u, 1u, 16u),
                                           std::make_tuple(4u, 16u, 32u),
                                           std::make_tuple(16u, 8u, 64u),
                                           std::make_tuple(64u, 32u, 128u)));

TEST(Stackless, SkipPointerVisitsAtLeastAsManyNodesAsPsb) {
  // §II-A: "visiting all sibling nodes requires too many accesses to
  // unnecessary tree nodes, especially for kNN query processing".
  const PointSet points = test::small_clustered(16, 5000, 71);
  const PointSet queries = test::random_queries(16, 12, 73);
  const sstree::SSTree tree = sstree::build_kmeans(points, 64).tree;
  GpuKnnOptions opts;
  const BatchResult skip_r = skip_pointer_batch(tree, queries, opts);
  const BatchResult psb_r = psb_batch(tree, queries, opts);
  EXPECT_GE(skip_r.stats.nodes_visited * 10, psb_r.stats.nodes_visited * 9)
      << "skip pointers should not beat PSB on node visits by a wide margin";
}

TEST(Stackless, RestartRedescendsMoreInternalNodesThanPsb) {
  const PointSet points = test::small_clustered(16, 5000, 75);
  const PointSet queries = test::random_queries(16, 12, 77);
  const sstree::SSTree tree = sstree::build_kmeans(points, 64).tree;
  GpuKnnOptions opts;
  const BatchResult restart_r = restart_batch(tree, queries, opts);
  const BatchResult psb_r = psb_batch(tree, queries, opts);
  const auto internal_visits = [](const BatchResult& r) {
    return r.stats.nodes_visited - r.stats.leaves_visited;
  };
  EXPECT_GE(internal_visits(restart_r), internal_visits(psb_r));
}

TEST(Stackless, AllStrategiesVisitEveryLeafAtMostOnce) {
  const PointSet points = test::small_clustered(8, 2000, 79);
  const sstree::SSTree tree = sstree::build_hilbert(points, 32).tree;
  const PointSet queries = test::random_queries(8, 6, 81);
  GpuKnnOptions opts;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_LE(restart_query(tree, queries[i], opts, nullptr).stats.leaves_visited,
              tree.leaves().size());
    EXPECT_LE(skip_pointer_query(tree, queries[i], opts, nullptr).stats.leaves_visited,
              tree.leaves().size());
  }
}

TEST(BestFirstGpu, ExactAndVisitsFewestNodes) {
  const PointSet points = test::small_clustered(16, 4000, 95);
  const sstree::SSTree tree = sstree::build_kmeans(points, 64).tree;
  const PointSet queries = test::random_queries(16, 10, 97);
  GpuKnnOptions opts;
  opts.k = 16;
  const BatchResult bf = best_first_gpu_batch(tree, queries, opts);
  const BatchResult ps = psb_batch(tree, queries, opts);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto expected = test::reference_knn_distances(points, queries[q], opts.k);
    test::expect_knn_matches(bf.queries[q].neighbors, expected, "best-first gpu");
  }
  // Best-first is node-access optimal among the exact traversals...
  EXPECT_LE(bf.stats.nodes_visited, ps.stats.nodes_visited);
  // ...but its lock-serialized shared priority queue costs issue slots
  // (§II-C): far more serialized work than PSB's merge-based list updates.
  EXPECT_GT(bf.metrics.serial_ops, ps.metrics.serial_ops * 5);
}

TEST(Radius, MatchesLinearScan) {
  const PointSet points = test::small_clustered(8, 3000, 83);
  const sstree::SSTree tree = sstree::build_kmeans(points, 64).tree;
  const PointSet queries = test::random_queries(8, 8, 85);
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    // Pick a radius that captures a meaningful number of points.
    const auto ref32 = test::reference_knn_distances(points, queries[qi], 32);
    const Scalar radius = ref32.back();

    const RadiusResult r = radius_query(tree, queries[qi], radius);
    std::vector<Scalar> expected;
    for (std::size_t i = 0; i < points.size(); ++i) {
      const Scalar d = distance(queries[qi], points[i]);
      if (d <= radius) expected.push_back(d);
    }
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(r.matches.size(), expected.size()) << "query " << qi;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_FLOAT_EQ(r.matches[i].dist, expected[i]);
    }
  }
}

TEST(Radius, ZeroRadiusFindsExactDuplicates) {
  PointSet points(2);
  for (int i = 0; i < 50; ++i) points.append(std::vector<Scalar>{1, 2});
  for (int i = 0; i < 50; ++i) points.append(std::vector<Scalar>{5, 6});
  const sstree::SSTree tree = sstree::build_hilbert(points, 16).tree;
  const RadiusResult r = radius_query(tree, std::vector<Scalar>{1, 2}, 0);
  EXPECT_EQ(r.matches.size(), 50u);
  for (const auto& m : r.matches) EXPECT_FLOAT_EQ(m.dist, 0.0F);
}

TEST(Radius, EmptyResultAndPreconditions) {
  const PointSet points = test::small_clustered(4, 200, 87);
  const sstree::SSTree tree = sstree::build_hilbert(points, 16).tree;
  std::vector<Scalar> far_query{-1e6F, -1e6F, -1e6F, -1e6F};
  const RadiusResult r = radius_query(tree, far_query, 1.0F);
  EXPECT_TRUE(r.matches.empty());
  EXPECT_THROW(radius_query(tree, far_query, -1.0F), InvalidArgument);
  EXPECT_THROW(radius_query(tree, std::vector<Scalar>{1, 2}, 1.0F), InvalidArgument);
}

TEST(Radius, WorksOnRectModeTrees) {
  const PointSet points = test::small_clustered(4, 1000, 91);
  sstree::KMeansBuildOptions bopts;
  bopts.bounds = sstree::BoundsMode::kRect;
  const sstree::SSTree tree = sstree::build_kmeans(points, 32, bopts).tree;
  const auto ref = test::reference_knn_distances(points, points[3], 12);
  const RadiusResult r = radius_query(tree, points[3], ref.back());
  std::size_t expected = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (distance(points[3], points[i]) <= ref.back()) ++expected;
  }
  EXPECT_EQ(r.matches.size(), expected);
}

TEST(Radius, PrunesComparedToFullScan) {
  const PointSet points = test::small_clustered(8, 4000, 89);
  const sstree::SSTree tree = sstree::build_kmeans(points, 64).tree;
  const auto ref = test::reference_knn_distances(points, points[0], 8);
  const RadiusResult r = radius_query(tree, points[0], ref.back());
  EXPECT_LT(r.stats.points_examined, points.size() / 2)
      << "radius search failed to prune a clustered dataset";
}

}  // namespace
}  // namespace psb::knn
