// Metamorphic properties: transformations of the input with predictable
// effects on the output. These catch whole classes of silent geometric bugs
// that example-based tests cannot.
#include <gtest/gtest.h>

#include "knn/psb.hpp"
#include "sstree/builders.hpp"
#include "test_util.hpp"

namespace psb::knn {
namespace {

PointSet transform(const PointSet& in, Scalar scale, Scalar offset) {
  PointSet out(in.dims());
  out.reserve(in.size());
  std::vector<Scalar> p(in.dims());
  for (std::size_t i = 0; i < in.size(); ++i) {
    for (std::size_t t = 0; t < in.dims(); ++t) p[t] = in[i][t] * scale + offset;
    out.append(p);
  }
  return out;
}

std::vector<PointId> ids_of(const std::vector<KnnHeap::Entry>& entries) {
  std::vector<PointId> ids;
  ids.reserve(entries.size());
  for (const auto& e : entries) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(Metamorphic, TranslationInvariance) {
  // Shifting every point and every query by the same vector must preserve
  // the neighbor id sets and distances.
  const PointSet points = test::small_clustered(8, 1500, 201);
  const PointSet shifted = transform(points, 1, 250);
  const PointSet queries = test::random_queries(8, 6, 203);
  const PointSet shifted_q = transform(queries, 1, 250);

  const sstree::SSTree a = sstree::build_hilbert(points, 32).tree;
  const sstree::SSTree b = sstree::build_hilbert(shifted, 32).tree;
  GpuKnnOptions opts;
  opts.k = 12;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto ra = psb_query(a, queries[q], opts, nullptr);
    const auto rb = psb_query(b, shifted_q[q], opts, nullptr);
    EXPECT_EQ(ids_of(ra.neighbors), ids_of(rb.neighbors)) << "query " << q;
    for (std::size_t i = 0; i < ra.neighbors.size(); ++i) {
      EXPECT_NEAR(ra.neighbors[i].dist, rb.neighbors[i].dist,
                  1e-3 + 1e-4 * ra.neighbors[i].dist);
    }
  }
}

TEST(Metamorphic, UniformScalingScalesDistances) {
  const PointSet points = test::small_clustered(4, 1000, 205);
  const PointSet scaled = transform(points, 3, 0);
  const PointSet queries = test::random_queries(4, 6, 207);
  const PointSet scaled_q = transform(queries, 3, 0);

  const sstree::SSTree a = sstree::build_kmeans(points, 32).tree;
  const sstree::SSTree b = sstree::build_kmeans(scaled, 32).tree;
  GpuKnnOptions opts;
  opts.k = 8;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto ra = psb_query(a, queries[q], opts, nullptr);
    const auto rb = psb_query(b, scaled_q[q], opts, nullptr);
    for (std::size_t i = 0; i < ra.neighbors.size(); ++i) {
      EXPECT_NEAR(rb.neighbors[i].dist, ra.neighbors[i].dist * 3,
                  1e-2 + 1e-3 * rb.neighbors[i].dist);
    }
  }
}

TEST(Metamorphic, AddingFarPointsDoesNotChangeLocalAnswers) {
  PointSet points = test::small_clustered(4, 800, 209);
  const PointSet queries = test::random_queries(4, 6, 211);
  const sstree::SSTree before = sstree::build_hilbert(points, 32).tree;
  GpuKnnOptions opts;
  opts.k = 8;
  std::vector<std::vector<Scalar>> before_dists;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto r = psb_query(before, queries[q], opts, nullptr);
    std::vector<Scalar> ds;
    for (const auto& e : r.neighbors) ds.push_back(e.dist);
    before_dists.push_back(std::move(ds));
  }

  // Add a distant cluster (far outside both data and query extents).
  Rng rng(213);
  for (int i = 0; i < 200; ++i) {
    points.append(std::vector<Scalar>{static_cast<Scalar>(1e7 + rng.normal(0, 10)),
                                      static_cast<Scalar>(1e7 + rng.normal(0, 10)),
                                      static_cast<Scalar>(1e7), static_cast<Scalar>(1e7)});
  }
  const sstree::SSTree after = sstree::build_hilbert(points, 32).tree;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto r = psb_query(after, queries[q], opts, nullptr);
    ASSERT_EQ(r.neighbors.size(), before_dists[q].size());
    for (std::size_t i = 0; i < before_dists[q].size(); ++i) {
      EXPECT_FLOAT_EQ(r.neighbors[i].dist, before_dists[q][i]) << "query " << q;
    }
  }
}

TEST(Metamorphic, DataPermutationPreservesAnswersByDistance) {
  // Reordering the dataset permutes point ids but must not change the
  // neighbor distance multiset.
  const PointSet points = test::small_clustered(8, 1200, 215);
  Rng rng(217);
  std::vector<PointId> perm(points.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<PointId>(i);
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.next_below(i)]);
  }
  const PointSet shuffled = points.subset(perm);

  const sstree::SSTree a = sstree::build_kmeans(points, 32).tree;
  const sstree::SSTree b = sstree::build_kmeans(shuffled, 32).tree;
  const PointSet queries = test::random_queries(8, 6, 219);
  GpuKnnOptions opts;
  opts.k = 10;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto ra = psb_query(a, queries[q], opts, nullptr);
    const auto rb = psb_query(b, queries[q], opts, nullptr);
    for (std::size_t i = 0; i < ra.neighbors.size(); ++i) {
      EXPECT_NEAR(ra.neighbors[i].dist, rb.neighbors[i].dist,
                  1e-3 + 1e-4 * ra.neighbors[i].dist)
          << "query " << q << " rank " << i;
    }
  }
}

}  // namespace
}  // namespace psb::knn
