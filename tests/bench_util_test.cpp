// Tests for the bench harness utilities (table rendering, CLI parsing).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "bench_util/config.hpp"
#include "bench_util/stats.hpp"
#include "bench_util/table.hpp"
#include "common/error.hpp"

namespace psb::bench_util {
namespace {

TEST(Fmt, PlainAndScientific) {
  EXPECT_EQ(fmt(1.5, 2), "1.50");
  EXPECT_EQ(fmt(0.0, 2), "0.00");
  EXPECT_NE(fmt(0.0001, 2).find("e"), std::string::npos);
  EXPECT_NE(fmt(5e7, 2).find("e"), std::string::npos);
}

TEST(Fmt, Mb) { EXPECT_EQ(fmt_mb(2'500'000), "2.50"); }

TEST(Table, RendersAlignedRows) {
  Table t("demo", {"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("| alpha"), std::string::npos);
  EXPECT_NE(s.find("22222"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RowWidthMustMatch) {
  Table t("demo", {"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(Table, CsvOutput) {
  Table t("demo", {"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  const std::string path = ::testing::TempDir() + "/psb_table.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::remove(path.c_str());
}

TEST(Stats, SummaryOnKnownSample) {
  const std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 10u);
  EXPECT_DOUBLE_EQ(s.mean, 5.5);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 10);
  EXPECT_DOUBLE_EQ(s.p50, 5);   // nearest-rank
  EXPECT_DOUBLE_EQ(s.p90, 9);
  EXPECT_DOUBLE_EQ(s.p99, 10);
  EXPECT_NEAR(s.stddev, 2.8723, 1e-3);
}

TEST(Stats, EmptyAndSingle) {
  EXPECT_EQ(summarize({}).count, 0u);
  const std::vector<double> one{42};
  const Summary s = summarize(one);
  EXPECT_DOUBLE_EQ(s.mean, 42);
  EXPECT_DOUBLE_EQ(s.p99, 42);
  EXPECT_DOUBLE_EQ(s.stddev, 0);
}

TEST(Stats, PercentilesAreOrderStatistics) {
  std::vector<double> v(1000);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(999 - i);
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.p50, 499);
  EXPECT_DOUBLE_EQ(s.p99, 989);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);
  EXPECT_LE(s.p99, s.max);
}

TEST(Stats, BriefAndHistogramRender) {
  const std::vector<double> v{1, 1, 1, 2, 5, 9};
  const std::string b = brief(summarize(v));
  EXPECT_NE(b.find("p50="), std::string::npos);
  const std::string h = ascii_histogram(v, 4, 10);
  EXPECT_NE(h.find('#'), std::string::npos);
  EXPECT_EQ(ascii_histogram({}, 4, 10), "(empty)");
}

TEST(Config, Defaults) {
  char prog[] = "bench";
  char* argv[] = {prog};
  const BenchConfig cfg = BenchConfig::from_args(1, argv);
  EXPECT_EQ(cfg.total_points(), 100'000u);
  EXPECT_EQ(cfg.num_queries, 60u);
  EXPECT_EQ(cfg.k, 32u);
  EXPECT_EQ(cfg.degree, 128u);
  EXPECT_FALSE(cfg.paper_scale);
}

TEST(Config, PaperScale) {
  char prog[] = "bench";
  char flag[] = "--paper-scale";
  char* argv[] = {prog, flag};
  const BenchConfig cfg = BenchConfig::from_args(2, argv);
  EXPECT_EQ(cfg.total_points(), 1'000'000u);
  EXPECT_EQ(cfg.num_queries, 240u);
}

TEST(Config, ExplicitValues) {
  char prog[] = "bench";
  char f1[] = "--k";
  char v1[] = "64";
  char f2[] = "--degree";
  char v2[] = "256";
  char f3[] = "--stddev";
  char v3[] = "640";
  char* argv[] = {prog, f1, v1, f2, v2, f3, v3};
  const BenchConfig cfg = BenchConfig::from_args(7, argv);
  EXPECT_EQ(cfg.k, 64u);
  EXPECT_EQ(cfg.degree, 256u);
  EXPECT_DOUBLE_EQ(cfg.stddev, 640.0);
}

}  // namespace
}  // namespace psb::bench_util
